"""NVWAL: the write-ahead log in byte-addressable NVRAM.

This is the paper's Algorithm 1 (``sqliteWriteWalFramesToNVRAM``) plus the
surrounding machinery — the persistent WAL structure of Figures 2(b)/3, the
scheme variants of Section 5.3, checkpointing, and crash recovery
(Section 4.3).

Persistent NVRAM layout::

    root ("nvwal-root", a named Heapo allocation, 24 bytes used)
        0   magic          u64
        8   checkpoint_id  u32  (log generation; bumped by checkpoint)
        12  pad            u32
        16  first_block    u64  (address of the first log block, 0 = none)

    log block (Heapo allocation, named "nvwal-blk")
        0   next_block     u64
        8   block_size     u32
        12  chain_index    u32  (position in the chain, 0-based)
        16  frames...           (32-byte header + 8-byte-aligned payload)

Scheme naming follows the paper: **E/LS/CS** for eager / lazy / checksum
(asynchronous) synchronization, **Diff** for byte-granularity differential
logging, **UH** for the user-level heap.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field, replace

from repro.errors import ChecksumError, MediaError, TransactionError
from repro.hw.stats import TimeBucket
from repro.nvram.heapo import NvAllocation
from repro.nvram.persistency import PersistDomain, PersistencyModel
from repro.nvram.userheap import DEFAULT_BLOCK_SIZE, UserHeap
from repro.system import System
from repro.wal.base import (
    DEFAULT_CHECKPOINT_THRESHOLD,
    RecoveryReport,
    SyncMode,
    WalBackend,
)
from repro.wal.diff import DiffMode, apply_extents, compute_extents
from repro.wal.frames import (
    FULL_CHECKSUM_BITS,
    NV_FRAME_MAGIC,
    NV_HEADER_SIZE,
    NvFrame,
    commit_mark_bytes,
    commit_mark_value,
    decode_nv_frame_header,
    encode_nv_frame,
    epoch_close_value,
    epoch_member_value,
    payload_checksum,
)

_ROOT_MAGIC = 0x4E56_5741_4C00_0001
_ROOT_NAME = "nvwal-root"
_BLOCK_NAME = "nvwal-blk"
_ROOT_SIZE = 24
_ROOT_CKPT_OFFSET = 8
_ROOT_FIRST_BLOCK_OFFSET = 16
_BLOCK_HEADER_SIZE = 16


@dataclass(frozen=True)
class NvwalScheme:
    """One point in the paper's scheme matrix (Figure 7)."""

    sync: SyncMode = SyncMode.LAZY
    diff: bool = False
    user_heap: bool = False
    block_size: int = DEFAULT_BLOCK_SIZE
    diff_mode: DiffMode = DiffMode.MULTI_RANGE
    persistency: PersistencyModel = PersistencyModel.EXPLICIT

    @property
    def name(self) -> str:
        """Paper-style label, e.g. ``'NVWAL UH+LS+Diff'``."""
        parts = []
        if self.user_heap:
            parts.append("UH")
        parts.append(
            {"eager": "E", "lazy": "LS", "checksum": "CS"}[self.sync.value]
        )
        if self.diff:
            parts.append("Diff")
        label = "NVWAL " + "+".join(parts)
        if self.persistency is not PersistencyModel.EXPLICIT:
            label += f" [{self.persistency.value}]"
        return label

    def with_persistency(self, model: PersistencyModel) -> "NvwalScheme":
        """Same scheme under different persistency hardware (ablation A2)."""
        return replace(self, persistency=model)

    # -- the six variants evaluated in Figure 7 -------------------------

    @classmethod
    def eager(cls) -> "NvwalScheme":
        """Eager synchronization strawman (Figure 4b / Section 5.1 'E')."""
        return cls(sync=SyncMode.EAGER)

    @classmethod
    def ls(cls) -> "NvwalScheme":
        """NVWAL LS: lazy synchronization only."""
        return cls(sync=SyncMode.LAZY)

    @classmethod
    def ls_diff(cls) -> "NvwalScheme":
        """NVWAL LS+Diff: lazy sync + differential logging."""
        return cls(sync=SyncMode.LAZY, diff=True)

    @classmethod
    def cs_diff(cls) -> "NvwalScheme":
        """NVWAL CS+Diff: asynchronous (checksum) commit + diff."""
        return cls(sync=SyncMode.CHECKSUM, diff=True)

    @classmethod
    def uh_ls(cls) -> "NvwalScheme":
        """NVWAL UH+LS: user-level heap + lazy sync."""
        return cls(sync=SyncMode.LAZY, user_heap=True)

    @classmethod
    def uh_ls_diff(cls) -> "NvwalScheme":
        """NVWAL UH+LS+Diff: the paper's recommended scheme."""
        return cls(sync=SyncMode.LAZY, diff=True, user_heap=True)

    @classmethod
    def uh_cs_diff(cls) -> "NvwalScheme":
        """NVWAL UH+CS+Diff: fastest but probabilistically consistent."""
        return cls(sync=SyncMode.CHECKSUM, diff=True, user_heap=True)

    @classmethod
    def all_figure7(cls) -> list["NvwalScheme"]:
        """The six schemes of Figure 7, paper order."""
        return [
            cls.ls(),
            cls.ls_diff(),
            cls.cs_diff(),
            cls.uh_ls(),
            cls.uh_ls_diff(),
            cls.uh_cs_diff(),
        ]


@dataclass
class _EpochState:
    """Volatile bookkeeping for one open group-commit epoch."""

    #: (addr, encoded length) of every frame appended this epoch, in order.
    frame_ptrs: list[tuple[int, int]] = field(default_factory=list)
    #: Transactions appended so far (including frameless no-ops).
    txns: int = 0
    #: Per-transaction frame lists, in append order (empty list for a
    #: frameless no-op) — what the shipping hook exports at close.
    txn_frames: list = field(default_factory=list)
    #: Address / stored checksum of the epoch's last frame — the close
    #: mark is stamped there.
    last_addr: int | None = None
    last_checksum: int = 0


class NvwalBackend(WalBackend):
    """The NVRAM write-ahead log."""

    def __init__(
        self,
        system: System,
        scheme: NvwalScheme | None = None,
        checkpoint_threshold: int = DEFAULT_CHECKPOINT_THRESHOLD,
        checksum_bits: int = FULL_CHECKSUM_BITS,
    ) -> None:
        super().__init__(checkpoint_threshold)
        self.system = system
        self.cpu = system.cpu
        self.heapo = system.heapo
        self.scheme = scheme or NvwalScheme.uh_ls_diff()
        self.checksum_bits = checksum_bits
        self.persist_domain = PersistDomain(self.cpu, self.scheme.persistency)
        self.userheap = UserHeap(self.heapo, self.scheme.block_size)
        #: Latest committed image of every page present in the log; the
        #: base for differential logging and the source for checkpointing.
        self._logged_images: dict[int, bytes] = {}
        self._frame_count = 0
        self._root = self._ensure_root()
        self._checkpoint_id = self._read_checkpoint_id()
        #: NVRAM address holding the pointer to the *next* block — the root's
        #: first_block field, or the current tail block's next field.
        self._link_addr = self._root.addr + _ROOT_FIRST_BLOCK_OFFSET
        #: Open group-commit epoch, or None (see :meth:`group_begin`).
        self._epoch: _EpochState | None = None
        #: Optional frame-export hook, called as ``on_commit(txn_frames)``
        #: with a list of per-transaction :class:`NvFrame` lists the
        #: moment those transactions become durable (a standalone commit
        #: mark, or the epoch-close mark covering the whole batch).  The
        #: replication shipping log taps this to stream committed frames.
        self.on_commit = None

    # ------------------------------------------------------------------
    # root management
    # ------------------------------------------------------------------

    def _ensure_root(self) -> NvAllocation:
        root = self.heapo.lookup(_ROOT_NAME)
        if root is not None:
            return root
        root = self.heapo.nvmalloc(_ROOT_SIZE, name=_ROOT_NAME)
        image = struct.pack("<QIIQ", _ROOT_MAGIC, 1, 0, 0)
        self.cpu.memcpy(root.addr, image)
        self.cpu.dmb()
        self.cpu.cache_line_flush(root.addr, root.addr + _ROOT_SIZE)
        self.cpu.dmb()
        self.cpu.persist_barrier()
        return root

    def _read_checkpoint_id(self) -> int:
        try:
            raw = self.cpu.load_free(self._root.addr, _ROOT_SIZE)
        except MediaError:
            # Unreadable root: fall back to generation 1.  Every surviving
            # frame carries a different checkpoint id and is ignored, so
            # recovery degrades to the checkpointed database image — a
            # valid (if old) committed prefix.
            return 1
        magic, ckpt_id, _pad, _first = struct.unpack("<QIIQ", raw)
        return ckpt_id if magic == _ROOT_MAGIC else 1

    # ------------------------------------------------------------------
    # Algorithm 1: sqliteWriteWalFramesToNVRAM
    # ------------------------------------------------------------------

    def write_transaction(
        self,
        dirty_pages: dict[int, bytes],
        commit: bool = True,
        pre_images: dict[int, bytes] | None = None,
    ) -> None:
        """Log one transaction's dirty pages per Algorithm 1."""
        if self._epoch is not None:
            raise TransactionError(
                "cannot log a standalone transaction while a group-commit "
                "epoch is open; close it with group_close() first"
            )
        frames = self._build_frames(dirty_pages)
        if not frames:
            return
        costs = self.system.config.db_costs
        explicit = self.scheme.persistency is PersistencyModel.EXPLICIT
        frame_ptrs: list[tuple[int, int]] = []

        # --- logging phase (Algorithm 1 lines 1-20) ---
        for frame in frames:
            self.cpu.compute(costs.frame_assembly_ns, TimeBucket.CPU)
            self.cpu.compute(
                costs.checksum_ns_per_byte * len(frame.payload), TimeBucket.CPU
            )
            encoded = encode_nv_frame(frame, self.checksum_bits)
            if not self.userheap.fits(len(encoded)):
                self._chain_new_block(len(encoded))
            addr = self.userheap.allocate(len(encoded))
            self.cpu.memcpy(addr, encoded)
            self.persist_domain.after_store(addr, len(encoded))
            frame_ptrs.append((addr, len(encoded)))
            if explicit and self.scheme.sync is SyncMode.EAGER:
                # Figure 4(b): synchronize per log entry.
                self.cpu.dmb()
                self.cpu.cache_line_flush(addr, addr + len(encoded))
                self.cpu.dmb()
                self.cpu.persist_barrier()
        self._frame_count += len(frames)

        # --- flush phase (Algorithm 1 lines 21-28) ---
        if explicit and self.scheme.sync is SyncMode.LAZY:
            self.cpu.dmb()
            for addr, length in frame_ptrs:
                self.cpu.cache_line_flush(addr, addr + length)
            self.cpu.dmb()
            self.cpu.persist_barrier()
        elif not explicit:
            self.persist_domain.commit_barrier()
        # SyncMode.CHECKSUM: no flush of log entries (Figure 4d).

        # --- commit phase (Algorithm 1 lines 29-36) ---
        if commit:
            last = frames[-1]
            checksum = payload_checksum(
                last.payload, last.page_no, last.offset, self.checksum_bits
            )
            self._write_commit_mark(frame_ptrs[-1][0], checksum, explicit)

        for frame in frames:
            base = self._logged_images.get(
                frame.page_no, bytes(self.system.page_size)
            )
            self._logged_images[frame.page_no] = frame.apply_to(base)
        if commit and self.on_commit is not None:
            self.on_commit([frames])
        self.note_occupancy()

    def _write_commit_mark(
        self, last_frame_addr: int, checksum: int, explicit: bool
    ) -> None:
        mark_offset, mark = commit_mark_bytes(self._checkpoint_id, checksum)
        mark_addr = last_frame_addr + mark_offset
        self.cpu.store(mark_addr, mark)
        self.persist_domain.after_store(mark_addr, len(mark))
        if explicit:
            self.cpu.dmb()
            if self.scheme.sync is SyncMode.CHECKSUM:
                # Flush the whole frame header so the checksum bytes reach
                # NVRAM along with the commit mark (Figure 4d).
                self.cpu.cache_line_flush(
                    last_frame_addr, last_frame_addr + NV_HEADER_SIZE
                )
            else:
                self.cpu.cache_line_flush(mark_addr, mark_addr + len(mark))
            self.cpu.dmb()
            self.cpu.persist_barrier()
        else:
            self.persist_domain.commit_barrier()

    # ------------------------------------------------------------------
    # group commit: epoch-batched persistence (Section 4.2 extended)
    # ------------------------------------------------------------------

    @property
    def group_open(self) -> bool:
        """True while a group-commit epoch is accepting transactions."""
        return self._epoch is not None

    def group_begin(self) -> None:
        """Open a group-commit epoch.

        Until :meth:`group_close`, transactions appended with
        :meth:`group_append` share the epoch: their frames go to NVRAM
        with no per-transaction flush or barrier, and none of them is
        committed.  One close mark then commits them all at once, so a
        power failure inside the open epoch loses the whole epoch and
        never a prefix of it.
        """
        if self._epoch is not None:
            raise TransactionError("a group-commit epoch is already open")
        self._epoch = _EpochState()

    def group_append(
        self,
        dirty_pages: dict[int, bytes],
        pre_images: dict[int, bytes] | None = None,
    ) -> None:
        """Append one transaction's frames to the open epoch.

        This is Algorithm 1's logging phase with the synchronization
        cadence lifted out: no per-entry flush (even under E — grouping
        overrides the per-entry discipline, that is its point) and no
        per-transaction flush/barrier pair.  E/LS stamp an epoch-member
        word on the transaction's last frame so the log records durable,
        checksum-validated transaction boundaries; CS stamps nothing and
        relies on the checksum-validated close mark alone (Figure 4d
        stretched over the epoch).
        """
        if self._epoch is None:
            raise TransactionError("no group-commit epoch is open")
        epoch = self._epoch
        epoch.txns += 1
        frames = self._build_frames(dirty_pages)
        epoch.txn_frames.append(frames)
        if not frames:
            return
        costs = self.system.config.db_costs
        for frame in frames:
            self.cpu.compute(costs.frame_assembly_ns, TimeBucket.CPU)
            self.cpu.compute(
                costs.checksum_ns_per_byte * len(frame.payload), TimeBucket.CPU
            )
            encoded = encode_nv_frame(frame, self.checksum_bits)
            if not self.userheap.fits(len(encoded)):
                self._chain_new_block(len(encoded))
            addr = self.userheap.allocate(len(encoded))
            self.cpu.memcpy(addr, encoded)
            self.persist_domain.after_store(addr, len(encoded))
            epoch.frame_ptrs.append((addr, len(encoded)))
        self._frame_count += len(frames)

        last = frames[-1]
        checksum = payload_checksum(
            last.payload, last.page_no, last.offset, self.checksum_bits
        )
        epoch.last_addr = epoch.frame_ptrs[-1][0]
        epoch.last_checksum = checksum
        if self.scheme.sync is not SyncMode.CHECKSUM:
            # Epoch-member mark: a durable transaction boundary that
            # commits nothing by itself (the close sweep flushes it along
            # with the frame bytes).
            mark_offset, mark = commit_mark_bytes(
                self._checkpoint_id, checksum, word=epoch_member_value(checksum)
            )
            mark_addr = epoch.last_addr + mark_offset
            self.cpu.store(mark_addr, mark)
            self.persist_domain.after_store(mark_addr, len(mark))

        for frame in frames:
            base = self._logged_images.get(
                frame.page_no, bytes(self.system.page_size)
            )
            self._logged_images[frame.page_no] = frame.apply_to(base)

    def group_close(self) -> int:
        """Persist the epoch with one coalesced flush + barrier sequence
        and commit it with a single close mark.  Returns the number of
        transactions the epoch carried.

        E/LS: one dmb, one coalesced cache-line sweep over the epoch's
        (mostly contiguous) frame ranges, one dmb, one persist barrier —
        then the atomic close-mark store with its own small ordering
        point.  CS flushes only the closing frame's header.  The acks the
        service layer releases on return are therefore the first moment
        any of the epoch's transactions is durable.
        """
        if self._epoch is None:
            raise TransactionError("no group-commit epoch is open")
        epoch = self._epoch
        self._epoch = None
        if not epoch.frame_ptrs:
            if self.on_commit is not None:
                # All-no-op epoch: nothing to persist, but the shipping
                # log still needs the (empty) transaction boundaries so
                # replica sequence numbers stay aligned.
                self.on_commit(epoch.txn_frames)
            return epoch.txns
        explicit = self.scheme.persistency is PersistencyModel.EXPLICIT

        # --- epoch flush phase: one sweep for every transaction ---
        if explicit and self.scheme.sync is not SyncMode.CHECKSUM:
            self.cpu.dmb()
            self._flush_coalesced(epoch.frame_ptrs)
            self.cpu.dmb()
            self.cpu.persist_barrier()
        elif not explicit:
            self.persist_domain.commit_barrier()
        # CS: no flush of log entries at all (Figure 4d).

        # --- epoch commit: one atomic close-mark store ---
        self._write_epoch_close(epoch.last_addr, epoch.last_checksum, explicit)
        if self.on_commit is not None:
            self.on_commit(epoch.txn_frames)
        self.note_occupancy()
        return epoch.txns

    def _flush_coalesced(self, ptrs: list[tuple[int, int]]) -> None:
        """Issue one cache-line sweep per contiguous run of frame ranges.

        Frames are bump-allocated, so an epoch's frames form one run per
        log block touched; each run becomes a single ``dccmvac`` batch
        instead of one flush call per frame."""
        start, end = ptrs[0][0], ptrs[0][0] + ptrs[0][1]
        for addr, length in ptrs[1:]:
            if addr == end:
                end = addr + length
            else:
                self.cpu.cache_line_flush(start, end)
                start, end = addr, addr + length
        self.cpu.cache_line_flush(start, end)

    def _write_epoch_close(
        self, last_frame_addr: int, checksum: int, explicit: bool
    ) -> None:
        mark_offset, mark = commit_mark_bytes(
            self._checkpoint_id, checksum, word=epoch_close_value(checksum)
        )
        mark_addr = last_frame_addr + mark_offset
        self.cpu.store(mark_addr, mark)
        self.persist_domain.after_store(mark_addr, len(mark))
        if explicit:
            self.cpu.dmb()
            if self.scheme.sync is SyncMode.CHECKSUM:
                # Flush the whole closing header so the checksum reaches
                # NVRAM with the close mark (Figure 4d).
                self.cpu.cache_line_flush(
                    last_frame_addr, last_frame_addr + NV_HEADER_SIZE
                )
            else:
                self.cpu.cache_line_flush(mark_addr, mark_addr + len(mark))
            self.cpu.dmb()
            self.cpu.persist_barrier()
        else:
            self.persist_domain.commit_barrier()

    def _build_frames(self, dirty_pages: dict[int, bytes]) -> list[NvFrame]:
        """Turn dirty page images into WAL frames — exactly one per page.

        The first time a page appears in the current log generation its
        entire image is logged (Figure 3); afterwards only the changed byte
        extents are, packed into a single frame so differential logging
        shrinks frames without multiplying them (Figure 2b)."""
        frames: list[NvFrame] = []
        for pno, image in dirty_pages.items():
            if self.scheme.diff and pno in self._logged_images:
                extents = compute_extents(
                    self._logged_images[pno], image, self.scheme.diff_mode
                )
            else:
                extents = [(0, image)] if image != self._logged_images.get(pno) else []
            if not extents:
                continue
            frames.append(
                NvFrame.from_extents(pno, extents, self._checkpoint_id)
            )
        return frames

    # ------------------------------------------------------------------
    # block chaining (Algorithm 1 lines 4-14)
    # ------------------------------------------------------------------

    def _chain_new_block(self, frame_size: int) -> None:
        """Allocate the next NVRAM log block and link it durably."""
        need = frame_size + _BLOCK_HEADER_SIZE
        if self.scheme.user_heap:
            size = max(self.scheme.block_size, need)
            alloc = self.userheap.pre_allocate_block(size, name=_BLOCK_NAME)
        else:
            # Stock path: one kernel allocation per frame (Section 5.3,
            # "NVWAL LS ... calls Heapo's nvmalloc() for every WAL frame").
            alloc = self.heapo.nvmalloc(need, name=_BLOCK_NAME)
        # Initialize the block header and store the link, then persist both
        # before the block becomes reachable (lines 8-11).  The header's
        # third field records the block's position in the chain; recovery
        # refuses links whose position does not match, so a corrupted
        # pointer can never splice the walk into the middle of the chain.
        self.cpu.memcpy(
            alloc.addr,
            struct.pack("<QII", 0, alloc.size, len(self.userheap.blocks)),
        )
        self.cpu.store(self._link_addr, struct.pack("<Q", alloc.addr))
        self.cpu.dmb()
        self.cpu.cache_line_flush(alloc.addr, alloc.addr + _BLOCK_HEADER_SIZE)
        self.cpu.cache_line_flush(self._link_addr, self._link_addr + 8)
        self.cpu.dmb()
        self.cpu.persist_barrier()
        if self.scheme.user_heap:
            # line 13: mark the in-use flag now that the reference is durable
            self.userheap.commit_block(alloc, reserved=_BLOCK_HEADER_SIZE)
        else:
            self.userheap.adopt(alloc, used=_BLOCK_HEADER_SIZE)
        self._link_addr = alloc.addr  # next-pointer field of the new tail

    # ------------------------------------------------------------------
    # recovery (Section 4.3)
    # ------------------------------------------------------------------

    def recover(self) -> dict[int, bytes]:
        """Walk the NVRAM log, apply committed transactions, reclaim
        orphans, and leave the backend positioned for new appends.

        Salvage semantics: the scan stops at the first frame that fails
        any validity check (checksum, commit word, unreadable media) and
        keeps the longest valid committed prefix instead of raising.
        :attr:`last_recovery` reports what was replayed and dropped.
        """
        report = RecoveryReport()
        self.last_recovery = report
        self._root = self._ensure_root()
        self._checkpoint_id = self._read_checkpoint_id()
        self.userheap.blocks.clear()
        self.userheap.used = 0
        self._logged_images.clear()
        self._frame_count = 0
        self._link_addr = self._root.addr + _ROOT_FIRST_BLOCK_OFFSET
        self._epoch = None  # any open epoch died with the crash

        chain = self._walk_chain(report)
        committed, tail_position = self._scan_frames(chain, report)

        # Rebuild volatile allocator state up to the end of committed data.
        reachable = set()
        last_block_index = tail_position[0] if tail_position else -1
        for i, alloc in enumerate(chain):
            if i > last_block_index:
                break
            reachable.add(alloc.addr)
            used = (
                tail_position[1]
                if i == last_block_index
                else alloc.size  # earlier blocks are treated as full
            )
            self.userheap.adopt(alloc, used)
        if self.userheap.blocks:
            self._link_addr = self.userheap.blocks[-1].addr
            # Truncate the durable chain after the last committed frame's
            # block, so stale in-use blocks do not linger.
            self._truncate_chain_after(self.userheap.blocks[-1])
        else:
            self._store_durable_u64(
                self._root.addr + _ROOT_FIRST_BLOCK_OFFSET, 0
            )
        self._reclaim_orphan_blocks(reachable)

        # Apply committed transactions over base pages from the db file.
        images: dict[int, bytes] = {}
        applied = 0
        for frame in committed:
            base = images.get(frame.page_no)
            if base is None:
                base = self._base_page(frame.page_no)
            try:
                images[frame.page_no] = frame.apply_to(base)
            except ChecksumError:
                # Checksum-valid frames cannot normally fail application;
                # if one does, keep the prefix applied so far.
                report.corruption_detected = True
                report.reason = report.reason or "frame application failed"
                report.frames_dropped += len(committed) - applied
                committed = committed[:applied]
                break
            applied += 1
        self._logged_images = dict(images)
        self._frame_count = len(committed)
        report.frames_replayed = len(committed)
        if len(committed) < (report.commit_boundaries or (0,))[-1]:
            # Frame application truncated the replayed prefix: drop the
            # commit boundaries past it so cursor and salvage stay agreed.
            report.commit_boundaries = tuple(
                b for b in report.commit_boundaries if b <= len(committed)
            )
            report.epochs_replayed = len(report.commit_boundaries)
        if report.corruption_detected:
            report.frames_salvaged = len(committed)
        return images

    def _walk_chain(self, report: RecoveryReport) -> list[NvAllocation]:
        """Follow the persistent block list, dropping dangling references
        (a crash between linking and set_used_flag leaves the block
        reclaimed by heap recovery — Section 4.3 case 2).

        Hardened against media decay: a link is only followed into a live
        ``nvwal-blk`` allocation whose header carries the expected chain
        position.  A flipped root or next pointer therefore truncates the
        chain instead of splicing the walk into the middle of it (which
        would replay a non-prefix of the log).
        """
        try:
            raw = self.cpu.load_free(
                self._root.addr + _ROOT_FIRST_BLOCK_OFFSET, 8
            )
            addr = struct.unpack("<Q", raw)[0]
        except MediaError:
            report.corruption_detected = True
            report.reason = "root block pointer unreadable"
            return []
        chain: list[NvAllocation] = []
        seen = set()
        while addr and addr not in seen:
            seen.add(addr)
            alloc = self._live_block_at(addr)
            if alloc is None or alloc.name != _BLOCK_NAME:
                break
            try:
                header = self.cpu.load(addr, _BLOCK_HEADER_SIZE)
            except MediaError:
                report.corruption_detected = True
                report.reason = report.reason or "block header unreadable"
                break
            next_addr, _size, chain_index = struct.unpack_from("<QII", header, 0)
            if chain_index != len(chain):
                report.corruption_detected = True
                report.reason = report.reason or "chain position mismatch"
                break
            chain.append(alloc)
            addr = next_addr
        return chain

    def _live_block_at(self, addr: int) -> NvAllocation | None:
        if not self.heapo.is_live(addr):
            return None
        return self.heapo.allocation_at(addr)

    def _scan_frames(
        self, chain: list[NvAllocation], report: RecoveryReport
    ) -> tuple[list[NvFrame], tuple[int, int] | None]:
        """Parse frames block by block; return the committed prefix and the
        position (block index, offset) just after the last committed frame.

        The scan stops — keeping what is committed so far — at the first
        frame whose payload checksum or commit word is invalid, or whose
        bytes the media refuses to return.  A zero commit word is a normal
        in-flight frame; any other value must equal one of the three words
        derived from the frame's checksum (standalone commit, epoch
        member, epoch close — see :func:`commit_mark_value`), so decayed
        commit fields cannot mint phantom transactions.

        Epoch semantics: an epoch-member word is a validated transaction
        boundary but keeps its frames *pending*; only a standalone commit
        or an epoch-close word commits everything pending.  A crash inside
        an open epoch therefore drops every one of its transactions —
        recovery replays the longest valid prefix of whole epochs.
        """
        committed: list[NvFrame] = []
        pending: list[NvFrame] = []
        tail: tuple[int, int] | None = None
        boundaries: list[int] = []

        def finish() -> tuple[list[NvFrame], tuple[int, int] | None]:
            report.commit_boundaries = tuple(boundaries)
            report.epochs_replayed = len(boundaries)
            return committed, tail

        def salvage(reason: str) -> tuple[list[NvFrame], tuple[int, int] | None]:
            report.corruption_detected = True
            report.reason = report.reason or reason
            report.frames_dropped += len(pending)
            return finish()

        for block_index, alloc in enumerate(chain):
            pos = _BLOCK_HEADER_SIZE
            try:
                block_bytes = self.cpu.load(alloc.addr, alloc.size)
            except MediaError:
                return salvage("log block unreadable")
            while pos + NV_HEADER_SIZE <= alloc.size:
                magic, page_no, offset, size, checksum, ckpt, commit = (
                    decode_nv_frame_header(block_bytes, pos)
                )
                if magic != NV_FRAME_MAGIC or ckpt != self._checkpoint_id:
                    break
                padded = _align8(size)
                if pos + NV_HEADER_SIZE + padded > alloc.size:
                    break
                payload = bytes(
                    block_bytes[pos + NV_HEADER_SIZE : pos + NV_HEADER_SIZE + size]
                )
                if payload_checksum(
                    payload, page_no, offset, self.checksum_bits
                ) != checksum:
                    # Torn frame (or the asynchronous-commit window): the
                    # transaction it belongs to is considered aborted.
                    return salvage("frame checksum mismatch")
                member_word = epoch_member_value(checksum)
                if commit and commit not in (
                    commit_mark_value(checksum),
                    member_word,
                    epoch_close_value(checksum),
                ):
                    return salvage("invalid commit word")
                pending.append(
                    NvFrame(page_no, offset, payload, ckpt, commit=bool(commit))
                )
                pos += NV_HEADER_SIZE + padded
                if commit and commit != member_word:
                    committed.extend(pending)
                    pending.clear()
                    tail = (block_index, pos)
                    boundaries.append(len(committed))
        report.frames_dropped += len(pending)
        return finish()

    def verify_log(self) -> RecoveryReport:
        """Read-only scrub of the live NVRAM log.

        Re-walks the durable block chain and re-parses every frame with
        the same validity checks recovery applies, without touching the
        allocator, the replay images, or the chain itself.  MediaErrors
        from decayed units are absorbed into the report instead of
        raised, so the service layer can probe NVRAM health (circuit
        breaker half-open checks, degraded-mode re-promotion) between
        requests.
        """
        report = RecoveryReport()
        chain = self._walk_chain(report)
        committed, _tail = self._scan_frames(chain, report)
        report.frames_replayed = len(committed)
        if report.corruption_detected:
            report.frames_salvaged = len(committed)
        return report

    def _truncate_chain_after(self, tail_block: NvAllocation) -> None:
        """Free chain blocks past ``tail_block`` and clear its next pointer."""
        try:
            header = self.cpu.load_free(tail_block.addr, _BLOCK_HEADER_SIZE)
        except MediaError:
            return
        next_addr = struct.unpack_from("<Q", header, 0)[0]
        if not next_addr:
            return
        self._store_durable_u64(tail_block.addr, 0)
        while next_addr:
            alloc = self._live_block_at(next_addr)
            if alloc is None or alloc.name != _BLOCK_NAME:
                break
            try:
                hdr = self.cpu.load_free(alloc.addr, _BLOCK_HEADER_SIZE)
                next_addr = struct.unpack_from("<Q", hdr, 0)[0]
            except MediaError:
                next_addr = 0
            self.heapo.nvfree(alloc)

    def _reclaim_orphan_blocks(self, reachable: set[int]) -> None:
        """Free in-use WAL blocks not reachable from the root (e.g. a crash
        between the checkpoint's chain reset and its nvfree calls)."""
        for alloc in self.heapo.live_allocations():
            if alloc.name == _BLOCK_NAME and alloc.addr not in reachable:
                if self.heapo.is_live(alloc.addr):
                    self.heapo.nvfree(alloc)

    def _base_page(self, pno: int) -> bytes:
        page_size = self.system.page_size
        if self.db_file is None:
            return bytes(page_size)
        offset = (pno - 1) * page_size
        if offset >= self.db_file.size:
            return bytes(page_size)
        return self.db_file.read(offset, page_size).ljust(page_size, b"\x00")

    # ------------------------------------------------------------------
    # checkpointing (Section 4.3)
    # ------------------------------------------------------------------

    def checkpoint(self) -> int:
        """Write committed pages to the database file, then invalidate and
        free the NVRAM log."""
        if self.db_file is None:
            raise RuntimeError("NVWAL is not bound to a database file")
        if self._epoch is not None:
            raise TransactionError(
                "cannot checkpoint while a group-commit epoch is open"
            )
        started_ns = self.system.clock.now_ns
        pages = sorted(self._logged_images)
        page_size = self.system.page_size
        for pno in pages:
            self.db_file.write((pno - 1) * page_size, self._logged_images[pno])
        if pages:
            self.db_file.fsync()
        # Invalidate the log *after* the pages are durable: bump the
        # checkpoint id and unlink the chain in one flushed update.
        new_id = self._checkpoint_id + 1
        self.cpu.store(
            self._root.addr + _ROOT_CKPT_OFFSET, struct.pack("<I", new_id)
        )
        self.cpu.store(
            self._root.addr + _ROOT_FIRST_BLOCK_OFFSET, struct.pack("<Q", 0)
        )
        self.cpu.dmb()
        self.cpu.cache_line_flush(
            self._root.addr + _ROOT_CKPT_OFFSET, self._root.addr + _ROOT_SIZE
        )
        self.cpu.dmb()
        self.cpu.persist_barrier()
        self.userheap.free_all()
        self._checkpoint_id = new_id
        self._logged_images.clear()
        self._frame_count = 0
        self._link_addr = self._root.addr + _ROOT_FIRST_BLOCK_OFFSET
        self._note_checkpoint(started_ns, len(pages))
        return len(pages)

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------

    def frame_count(self) -> int:
        """Frames appended since the last checkpoint."""
        return self._frame_count

    def log_bytes_in_use(self) -> int:
        """NVRAM bytes held by log blocks (ablation A1)."""
        return sum(alloc.size for alloc in self.userheap.blocks)

    def frames_per_block(self) -> float:
        """Average frames stored per NVRAM block (paper: 4.9 at 8 KB)."""
        if not self.userheap.blocks:
            return 0.0
        return self._frame_count / len(self.userheap.blocks)

    def _store_durable_u64(self, addr: int, value: int) -> None:
        """Store + flush + barrier one 8-byte pointer (recovery-side)."""
        self.cpu.store(addr, struct.pack("<Q", value))
        self.cpu.dmb()
        self.cpu.cache_line_flush(addr, addr + 8)
        self.cpu.dmb()
        self.cpu.persist_barrier()


def _align8(value: int) -> int:
    return (value + 7) // 8 * 8
