"""WAL backend interface shared by NVWAL and the file baselines."""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass

from repro.errors import TransactionError
from repro.storage.ext4 import File

#: SQLite's default checkpoint threshold: 1000 logged frames.
DEFAULT_CHECKPOINT_THRESHOLD = 1000


@dataclass
class RecoveryReport:
    """What one :meth:`WalBackend.recover` pass did with the log.

    ``frames_replayed`` committed frames were applied to page images.
    ``frames_dropped`` frames were parsed but discarded — the uncommitted
    tail of an in-flight transaction, plus anything at or past the first
    invalid frame.  When corruption (bad checksum, invalid commit word,
    unreadable media) cut the scan short, ``corruption_detected`` is set,
    ``reason`` says why, and ``frames_salvaged`` records the committed
    prefix that was kept *despite* the corruption (equal to
    ``frames_replayed``; zero on a clean log).

    ``commit_boundaries`` are the cumulative committed-frame counts at
    every commit point the scan accepted — one entry per standalone
    commit mark or epoch-close mark, in log order, so
    ``commit_boundaries[-1] == frames_replayed`` whenever any unit
    committed.  ``epochs_replayed`` is ``len(commit_boundaries)``.  A
    shipping cursor and the salvage scan agree on prefix identity through
    these: "the first N closed units" means exactly "the first
    ``commit_boundaries[N-1]`` frames", with no off-by-one between the
    verify_log prefix length and the group-commit close marks.
    """

    frames_replayed: int = 0
    frames_salvaged: int = 0
    frames_dropped: int = 0
    corruption_detected: bool = False
    reason: str = ""
    epochs_replayed: int = 0
    commit_boundaries: tuple = ()


class SyncMode(str, enum.Enum):
    """When cache-line flushes and barriers are issued (Figure 4)."""

    #: Flush + barrier after every log entry (Figure 4b) — the strawman.
    EAGER = "eager"
    #: Batch flushes, barrier once before the commit mark (Figure 4c) —
    #: transaction-aware lazy synchronization, the paper's proposal.
    LAZY = "lazy"
    #: No flush of log entries at all; a checksum stored with the commit
    #: mark detects (probabilistically) unpersisted logs (Figure 4d) —
    #: asynchronous commit.
    CHECKSUM = "checksum"


class WalBackend(abc.ABC):
    """What the database engine needs from a write-ahead log."""

    def __init__(self, checkpoint_threshold: int = DEFAULT_CHECKPOINT_THRESHOLD):
        self.checkpoint_threshold = checkpoint_threshold
        self.db_file: File | None = None
        #: Report of the most recent :meth:`recover` call (None before one).
        self.last_recovery: RecoveryReport | None = None
        # Degenerate group-commit bookkeeping (see group_begin).
        self._group_open = False
        self._group_txns = 0

    def bind(self, db_file: File) -> None:
        """Attach the database file (needed for checkpoint and recovery)."""
        self.db_file = db_file

    # ------------------------------------------------------------------
    # the contract
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def write_transaction(
        self,
        dirty_pages: dict[int, bytes],
        commit: bool = True,
        pre_images: dict[int, bytes] | None = None,
    ) -> None:
        """Log one transaction's dirty page images; if ``commit``, make the
        transaction durable before returning.

        ``pre_images`` holds the pre-transaction images of the same pages;
        WAL backends ignore it, the rollback-journal baseline journals it.
        """

    @abc.abstractmethod
    def recover(self) -> dict[int, bytes]:
        """Replay the log after a crash or reopen.

        Returns the reconstructed images of every page with committed log
        content (to be installed in the page cache); leaves the backend
        ready to append new transactions.
        """

    @abc.abstractmethod
    def checkpoint(self) -> int:
        """Write committed pages back to the database file and truncate the
        log.  Returns the number of pages checkpointed."""

    @abc.abstractmethod
    def frame_count(self) -> int:
        """Frames currently in the log (drives the checkpoint policy)."""

    # ------------------------------------------------------------------
    # group commit (epoch batching)
    # ------------------------------------------------------------------
    #
    # NVWAL overrides these with a real shared-epoch path (one flush +
    # persist-barrier sequence for many transactions).  The defaults here
    # are the *parity* semantics for backends with no epoch concept: each
    # appended transaction is made individually durable, so acks released
    # at group_close are trivially covered — strictly stronger durability
    # at per-transaction cost.

    @property
    def group_open(self) -> bool:
        """True while a group-commit epoch is accepting transactions."""
        return self._group_open

    def group_begin(self) -> None:
        """Open a group-commit epoch."""
        if self._group_open:
            raise TransactionError("a group-commit epoch is already open")
        self._group_open = True
        self._group_txns = 0

    def group_append(
        self,
        dirty_pages: dict[int, bytes],
        pre_images: dict[int, bytes] | None = None,
    ) -> None:
        """Append one transaction to the open epoch."""
        if not self._group_open:
            raise TransactionError("no group-commit epoch is open")
        self.write_transaction(dirty_pages, commit=True, pre_images=pre_images)
        self._group_txns += 1

    def group_close(self) -> int:
        """Make the epoch durable; returns the transactions it carried."""
        if not self._group_open:
            raise TransactionError("no group-commit epoch is open")
        self._group_open = False
        return self._group_txns

    # ------------------------------------------------------------------
    # shared policy
    # ------------------------------------------------------------------

    def should_checkpoint(self) -> bool:
        """SQLite's policy: checkpoint when the log reaches the threshold."""
        return self.frame_count() >= self.checkpoint_threshold

    def maybe_checkpoint(self) -> int:
        """Checkpoint if the policy says so; returns pages written (0 if
        no checkpoint ran)."""
        if self.should_checkpoint():
            return self.checkpoint()
        return 0

    def verify_log(self) -> RecoveryReport:
        """Read-only scrub: re-validate log integrity without modifying
        any backend state.

        Backends living on media that can decay at runtime override this
        to re-check their durable structures; the service layer uses the
        report to decide whether degraded read-only mode can be lifted.
        The default backend has nothing to scrub and reports clean.
        """
        return RecoveryReport()

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    #
    # Backends that carry a ``system`` publish occupancy gauges and
    # checkpoint histograms into ``system.telemetry``.  Both helpers are
    # pure observers on the simulated clock: they never touch the CPU or
    # storage models, so instrumented backends spend zero simulated time
    # (and change zero behavior) on telemetry.

    def note_occupancy(self) -> None:
        """Publish current log occupancy (frames; log bytes if known)."""
        registry = getattr(getattr(self, "system", None), "telemetry", None)
        if registry is None:
            return
        registry.gauge("wal.frames").set(self.frame_count())
        log_bytes = getattr(self, "log_bytes_in_use", None)
        if log_bytes is not None:
            registry.gauge("wal.log_bytes").set(log_bytes())

    def _note_checkpoint(self, started_ns: float, pages: int) -> None:
        """Record one finished checkpoint (duration, pages, occupancy)."""
        registry = getattr(getattr(self, "system", None), "telemetry", None)
        if registry is None:
            return
        clock = self.system.clock  # type: ignore[attr-defined]
        registry.histogram("wal.checkpoint_ns").observe(
            int(clock.now_ns) - int(started_ns)
        )
        registry.counter("wal.checkpoints").inc()
        registry.gauge("wal.checkpoint_pages").set(pages)
        self.note_occupancy()
