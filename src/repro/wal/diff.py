"""Byte-granularity differential logging (Section 3.2).

Given the previously logged image of a B-tree page and its current image,
compute the byte extents that changed; only those extents are written to
NVRAM.  The paper describes truncating the preceding and trailing clean
regions of the page (one contiguous extent).  We implement that as
``DiffMode.SINGLE_RANGE`` and additionally a precise multi-extent encoding
(``MULTI_RANGE``, classic delta encoding) — ablation A3 quantifies the gap
between them, which is substantial because an insert dirties two distant
clusters (header + slot array near the top, cell content lower down).
"""

from __future__ import annotations

import enum

#: Extents closer than this are merged, since flushing happens at
#: cache-line granularity anyway and each extra extent costs a 32-byte
#: frame header.
_MERGE_GAP = 64


class DiffMode(str, enum.Enum):
    """How dirty bytes are encoded into WAL frames."""

    #: Whole page, no differential logging (stock SQLite behaviour).
    FULL_PAGE = "full"
    #: One extent from the first to the last dirty byte (the truncation
    #: scheme the paper describes).
    SINGLE_RANGE = "single"
    #: Precise dirty extents, merged across small gaps.
    MULTI_RANGE = "multi"


def compute_extents(
    old: bytes, new: bytes, mode: DiffMode = DiffMode.MULTI_RANGE
) -> list[tuple[int, bytes]]:
    """Return [(offset, changed_bytes), ...] turning ``old`` into ``new``.

    Both images must have equal length.  An empty list means no change.
    """
    if len(old) != len(new):
        raise ValueError(
            f"page images differ in size: {len(old)} vs {len(new)}"
        )
    if mode is DiffMode.FULL_PAGE:
        if old == new:
            return []
        return [(0, bytes(new))]
    if old == new:
        return []
    ranges = _changed_ranges(old, new)
    if mode is DiffMode.SINGLE_RANGE:
        start = ranges[0][0]
        end = ranges[-1][1]
        return [(start, bytes(new[start:end]))]
    merged = _merge_ranges(ranges, _MERGE_GAP)
    return [(start, bytes(new[start:end])) for start, end in merged]


def apply_extents(base: bytes, extents: list[tuple[int, bytes]]) -> bytes:
    """Apply extents to ``base``; the recovery-side inverse."""
    image = bytearray(base)
    for offset, data in extents:
        if offset < 0 or offset + len(data) > len(image):
            raise ValueError(
                f"extent [{offset}, {offset + len(data)}) outside page of "
                f"{len(image)} bytes"
            )
        image[offset : offset + len(data)] = data
    return bytes(image)


def _changed_ranges(old: bytes, new: bytes) -> list[tuple[int, int]]:
    """Exact [start, end) ranges where the images differ.

    A range is a maximal run of differing 64-byte chunks with its first and
    last chunk trimmed bytewise.  Chunks are located with a two-level scan
    (1 KB slice comparisons, refined to 64-byte slices only inside dirty
    kilobytes): slice comparison is C-speed in CPython, and a typical
    B-tree page change dirties two or three small clusters, so almost all
    of the page is dismissed at the coarse level.
    """
    chunk = 64
    coarse = 1024
    n = len(old)
    dirty: list[int] = []  # start offsets of differing 64-byte chunks
    for cpos in range(0, n, coarse):
        cend = cpos + coarse
        if cend > n:
            cend = n
        if old[cpos:cend] != new[cpos:cend]:
            for pos in range(cpos, cend, chunk):
                end = pos + chunk
                if end > n:
                    end = n
                if old[pos:end] != new[pos:end]:
                    dirty.append(pos)
    ranges: list[tuple[int, int]] = []
    i = 0
    m = len(dirty)
    while i < m:
        j = i
        while j + 1 < m and dirty[j + 1] == dirty[j] + chunk:
            j += 1
        start = dirty[i]
        while old[start] == new[start]:
            start += 1
        stop = min(dirty[j] + chunk, n)
        while old[stop - 1] == new[stop - 1]:
            stop -= 1
        ranges.append((start, stop))
        i = j + 1
    return ranges


def _merge_ranges(
    ranges: list[tuple[int, int]], gap: int
) -> list[tuple[int, int]]:
    """Merge ranges separated by less than ``gap`` bytes."""
    merged = [ranges[0]]
    for start, end in ranges[1:]:
        last_start, last_end = merged[-1]
        if start - last_end < gap:
            merged[-1] = (last_start, end)
        else:
            merged.append((start, end))
    return merged
