"""SQLite rollback-journal mode — the pre-WAL baseline.

Sections 1–2 of the paper motivate WAL by contrast with rollback journal
modes: journaling "modifies two files" (the rollback journal *and* the
database file) and therefore needs more ``fsync()`` calls per transaction.
This backend reproduces SQLite's DELETE-mode journal so that claim is
measurable:

commit protocol (per transaction):

1. write the *pre-images* of every page about to change into
   ``<db>-journal`` (header + records), then ``fsync`` the journal —
   undo information must be durable before the database is touched;
2. write the new page images into the database file in place, ``fsync``;
3. invalidate the journal (truncate to zero) and ``fsync`` again —
   this is the commit point.

Recovery: a non-empty journal with valid records is "hot" — the
transaction it belongs to did not reach its commit point, so the original
pages are rolled back into the database file.
"""

from __future__ import annotations

import struct
import zlib

from repro.hw.stats import TimeBucket
from repro.storage.ext4 import Ext4FileSystem, File
from repro.system import System
from repro.wal.base import (
    DEFAULT_CHECKPOINT_THRESHOLD,
    RecoveryReport,
    WalBackend,
)

_JOURNAL_MAGIC = 0x524A_4E4C  # "RJNL"
_HEADER_FMT = "<IIII"  # magic, page_size, record_count, nonce
_HEADER_SIZE = 32
_RECORD_HEADER_FMT = "<III"  # page_no, checksum, pad


class RollbackJournalBackend(WalBackend):
    """DELETE-mode rollback journaling (the paper's status-quo baseline)."""

    def __init__(self, system: System) -> None:
        super().__init__(DEFAULT_CHECKPOINT_THRESHOLD)
        self.system = system
        self.journal_file: File | None = None
        self._nonce = 1

    @property
    def name(self) -> str:
        """Series label for benchmarks."""
        return "Rollback journal"

    # ------------------------------------------------------------------
    # binding
    # ------------------------------------------------------------------

    def bind_files(
        self, db_file: File, fs: Ext4FileSystem, journal_name: str
    ) -> None:
        """Attach the database file and create/open the journal file."""
        self.bind(db_file)
        if fs.exists(journal_name):
            self.journal_file = fs.open(journal_name)
        else:
            self.journal_file = fs.create(journal_name)

    # ------------------------------------------------------------------
    # commit protocol
    # ------------------------------------------------------------------

    def write_transaction(
        self,
        dirty_pages: dict[int, bytes],
        commit: bool = True,
        pre_images: dict[int, bytes] | None = None,
    ) -> None:
        """Journal undo images, update the database in place, invalidate."""
        if self.db_file is None or self.journal_file is None:
            raise RuntimeError("rollback journal is not bound")
        if not dirty_pages:
            return
        if pre_images is None:
            raise RuntimeError(
                "rollback journaling requires the pre-transaction images"
            )
        costs = self.system.config.db_costs
        page_size = self.system.page_size

        # 1. undo log first
        self._nonce += 1
        header = struct.pack(
            _HEADER_FMT, _JOURNAL_MAGIC, page_size, len(dirty_pages), self._nonce
        ).ljust(_HEADER_SIZE, b"\x00")
        self.journal_file.write(0, header)
        offset = _HEADER_SIZE
        for pno in dirty_pages:
            self.system.cpu.compute(costs.frame_assembly_ns, TimeBucket.CPU)
            original = pre_images[pno]
            record = struct.pack(
                _RECORD_HEADER_FMT, pno, zlib.crc32(original), 0
            ) + original
            self.journal_file.write(offset, record)
            offset += len(record)
        self.journal_file.fsync()

        # 2. database file in place
        if commit:
            for pno, image in dirty_pages.items():
                self.db_file.write((pno - 1) * page_size, image)
            self.db_file.fsync()
            # 3. commit point: invalidate the journal
            self.journal_file.truncate(0)
            self.journal_file.fsync()
        self.note_occupancy()

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------

    def recover(self) -> dict[int, bytes]:
        """Roll back a hot journal, if any; the database file is then the
        authoritative state (nothing to install in the page cache)."""
        if self.db_file is None or self.journal_file is None:
            raise RuntimeError("rollback journal is not bound")
        report = RecoveryReport()
        self.last_recovery = report
        page_size = self.system.page_size
        raw = self.journal_file.read(0, _HEADER_SIZE)
        if len(raw) < _HEADER_SIZE:
            return {}
        magic, journal_page_size, count, _nonce = struct.unpack_from(
            _HEADER_FMT, raw, 0
        )
        if magic != _JOURNAL_MAGIC or journal_page_size != page_size:
            return {}
        # hot journal: restore every valid record, salvaging the longest
        # valid prefix if a record is torn or decayed
        restored: dict[int, bytes] = {}
        offset = _HEADER_SIZE
        record_size = struct.calcsize(_RECORD_HEADER_FMT) + page_size
        for i in range(count):
            record = self.journal_file.read(offset, record_size)
            if len(record) < record_size:
                report.frames_dropped = count - i
                break
            pno, checksum, _pad = struct.unpack_from(_RECORD_HEADER_FMT, record, 0)
            image = record[struct.calcsize(_RECORD_HEADER_FMT) :]
            if zlib.crc32(image) != checksum or pno == 0:
                # torn journal tail: journaling stopped mid-write
                report.corruption_detected = True
                report.reason = "journal record checksum mismatch"
                report.frames_dropped = count - i
                break
            restored[pno] = image
            offset += record_size
        report.frames_replayed = len(restored)
        if report.corruption_detected:
            report.frames_salvaged = len(restored)
        for pno, image in restored.items():
            self.db_file.write((pno - 1) * page_size, image)
        if restored:
            self.db_file.fsync()
        self.journal_file.truncate(0)
        self.journal_file.fsync()
        # Rolled-back pages must replace anything the pager read earlier.
        return restored

    # ------------------------------------------------------------------
    # group commit: rollback journaling has no batched path — each
    # transaction's commit point is its own journal-invalidation fsync,
    # which cannot be shared without merging transactions.  The inherited
    # per-transaction group_* defaults are the parity stub: every
    # group_append is individually durable before group_close returns.
    # ------------------------------------------------------------------

    # ------------------------------------------------------------------
    # checkpointing is meaningless here: data is already in the db file
    # ------------------------------------------------------------------

    def checkpoint(self) -> int:
        """No-op: journal mode has no log to migrate."""
        self._note_checkpoint(self.system.clock.now_ns, 0)
        return 0

    def frame_count(self) -> int:
        """Always zero — nothing accumulates between transactions."""
        return 0
