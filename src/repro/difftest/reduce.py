"""Statement-level reduction of failing streams.

Built on the shared :mod:`repro.shrink` engine (the same one the
torture-trace minimizer uses).  The failure signature is the *set of
finding kinds* — a shrink is kept only while at least one original kind
still fires, so a reduction cannot drift from a wrong-result divergence
to, say, an unrelated error-class mismatch.

Two passes, cheapest first:

1. truncate everything after the first diverging statement (on a
   100-statement stream this alone usually removes most of the work);
2. chunked greedy deletion down to single statements.

The runner auto-commits a dangling transaction before its end-of-stream
checks, so candidates that lose their COMMIT (or BEGIN) stay runnable —
an unbalanced transaction statement just fails identically in all four
executors, which is not a divergence.
"""

from __future__ import annotations

from repro.difftest.grammar import Stmt
from repro.difftest.runner import Finding, run_stream
from repro.shrink import shrink_sequence, shrink_to_prefix


def finding_kinds(findings: list[Finding]) -> frozenset:
    return frozenset(f.kind for f in findings)


def minimize_stream(stmts: list[Stmt], run=None) -> list[Stmt]:
    """Shrink ``stmts`` while preserving at least one original finding
    kind.  ``run`` maps a stream to findings (defaults to
    :func:`run_stream`; tests inject cheaper runners)."""
    run = run or run_stream
    baseline = run(stmts)
    kinds = finding_kinds(baseline)
    if not kinds:
        raise ValueError("stream does not fail; nothing to minimize")

    def still_fails(candidate: list[Stmt]) -> bool:
        return bool(finding_kinds(run(candidate)) & kinds)

    indexed = [f.stmt_index for f in baseline if f.stmt_index is not None]
    if indexed:
        stmts = shrink_to_prefix(stmts, still_fails, min(indexed))
    return shrink_sequence(stmts, still_fails)
