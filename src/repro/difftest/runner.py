"""Lockstep stream execution across the four executors, with oracles.

One :func:`run_stream` call executes a statement stream against real
SQLite plus the repro engine on the NVWAL, optimized file-WAL, and
rollback-journal backends, and applies five oracles:

* **result** — every statement's rows / rowcount / error class must
  match SQLite's (ordered row-for-row when the statement pinned a total
  order; as a multiset otherwise, plus a sortedness check for partial
  ORDER BY).
* **txnstate** — all four executors agree on whether a transaction is
  open after every statement.
* **scheme** — outside a transaction, the three repro backends must
  agree *bit for bit* on stored row encodings (page layouts may differ
  across schemes; row payload bytes may not), and again after a forced
  checkpoint and after a power-fail + recovery cycle.
* **invariant** — B-tree ``check_invariants`` plus page accounting
  (every page claimed exactly once by the header, a tree, or the
  freelist) between transactions.
* **final / recovery** — after the stream (and after crash recovery)
  every backend's full logical content must equal SQLite's.

The ``sabotage`` flag plants a wrong-result bug in the NVWAL executor's
access path (the range planner's key bounds *replace* the residual
filter instead of narrowing it), which both the SQLite comparison and
the scheme oracle must catch — the self-test for the whole subsystem.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass

from repro.config import tuna
from repro.db.database import Database
from repro.db.record import decode_row
from repro.db.sql.executor import Executor, _eval, _truthy
from repro.difftest.grammar import Stmt
from repro.difftest.oracles import (
    Outcome,
    ReproExecutor,
    SqliteOracle,
    compare_outcomes,
    rows_sorted,
)
from repro.errors import DatabaseError, ReproError
from repro.system import System
from repro.wal.filewal import FileWalBackend
from repro.wal.journal import RollbackJournalBackend
from repro.wal.nvwal import NvwalBackend

#: The three repro backends under test, in fixed comparison order.
BACKENDS = ("nvwal", "filewal", "journal")

DEFAULT_CHECKPOINT_THRESHOLD = 1000


@dataclass(frozen=True)
class Finding:
    """One divergence.  ``stmt_index`` is None for end-of-stream checks."""

    kind: str  # result | order | txnstate | scheme | invariant | final | recovery | crash
    stmt_index: int | None
    executor: str
    detail: str

    def format(self) -> str:
        where = "end" if self.stmt_index is None else f"stmt {self.stmt_index}"
        return f"{self.kind} @ {where} [{self.executor}]: {self.detail}"


class _SabotagedExecutor(Executor):
    """Planted wrong-result bug: when the planner extracts key bounds,
    they *replace* the residual WHERE filter instead of narrowing the
    scan — extra rows leak into every SELECT/UPDATE/DELETE whose
    predicate is wider than its key range."""

    def _matching_rows(self, table, indexes, where, params):
        names = [c.name for c in table.columns]
        tree = self.db.table_tree(table)
        lo, hi, residual = self._plan_key_range(table, where, params)
        if lo is not None or hi is not None:
            residual = None  # the bug: bounds treated as the whole filter
        for key, payload in tree.scan(lo, hi):
            values = decode_row(payload)
            if residual is None or _truthy(
                _eval(residual, dict(zip(names, values)), params)
            ):
                yield key, values


def build_database(
    backend: str,
    system: System | None = None,
    checkpoint_threshold: int = DEFAULT_CHECKPOINT_THRESHOLD,
) -> Database:
    """A repro Database on ``backend`` ("nvwal" | "filewal" | "journal").

    Pass the existing ``system`` to rebuild after a power failure (the
    crash-recovery path); omit it for a fresh machine.
    """
    if system is None:
        system = System(tuna(), seed=0)
    if backend == "nvwal":
        wal = NvwalBackend(system, checkpoint_threshold=checkpoint_threshold)
        early_split = True
    elif backend == "filewal":
        wal = FileWalBackend(
            system, optimized=True, checkpoint_threshold=checkpoint_threshold
        )
        early_split = True
    elif backend == "journal":
        wal = RollbackJournalBackend(system)
        early_split = False
    else:
        raise ValueError(f"unknown backend {backend!r}")
    return Database(system, wal=wal, early_split=early_split)


def run_stream(
    stmts: list[Stmt],
    *,
    checkpoint_threshold: int = DEFAULT_CHECKPOINT_THRESHOLD,
    sabotage: bool = False,
    integrity_every: int = 8,
    keep_going: bool = False,
) -> list[Finding]:
    """Execute ``stmts`` through all four executors; return findings.

    Deterministic for a given stream: simulated systems are seeded and
    the SQLite file lives in a throwaway temp directory.  Unless
    ``keep_going``, the run stops at the first statement with findings
    (later statements run on diverged state prove nothing) — but the
    end-of-stream checkpoint/recovery checks still run.
    """
    findings: list[Finding] = []
    with tempfile.TemporaryDirectory(prefix="difftest-") as tmp:
        oracle = SqliteOracle(os.path.join(tmp, "oracle.db"))
        try:
            executors = [
                ReproExecutor(
                    name, build_database(name, checkpoint_threshold=checkpoint_threshold)
                )
                for name in BACKENDS
            ]
            if sabotage:
                nvwal = executors[0]
                nvwal.db.executor = _SabotagedExecutor(nvwal.db)

            for index, stmt in enumerate(stmts):
                step = _run_statement(index, stmt, oracle, executors)
                findings.extend(step)
                if step and not keep_going:
                    break
                if (index + 1) % integrity_every == 0:
                    findings.extend(_check_integrity(index, executors))

            findings.extend(_finish(stmts, oracle, executors, sabotage))
        finally:
            oracle.close()
    return findings


def _run_statement(index, stmt, oracle, executors) -> list[Finding]:
    findings: list[Finding] = []
    expected = oracle.execute(stmt)
    if (
        stmt.order_index is not None
        and expected.status == "rows"
        and not rows_sorted(expected.rows, stmt.order_index, stmt.order_desc)
    ):
        # Sanity: the comparator itself must model SQLite's order.
        findings.append(
            Finding("order", index, oracle.label, "oracle rows not sorted")
        )
    for executor in executors:
        try:
            outcome = executor.execute(stmt)
        except Exception as exc:  # non-Repro escape = engine crash
            findings.append(
                Finding(
                    "crash", index, executor.label, f"{type(exc).__name__}: {exc}"
                )
            )
            continue
        mismatch = compare_outcomes(stmt.kind, expected, outcome, stmt.ordered)
        if mismatch:
            findings.append(Finding("result", index, executor.label, mismatch))
        if (
            stmt.order_index is not None
            and outcome.status == "rows"
            and not rows_sorted(outcome.rows, stmt.order_index, stmt.order_desc)
        ):
            findings.append(
                Finding(
                    "order", index, executor.label, "rows not in ORDER BY order"
                )
            )
    findings.extend(_check_txn_state(index, oracle, executors))
    if not findings and not oracle.in_transaction:
        findings.extend(_check_scheme_equivalence(index, executors))
    return findings


def _check_txn_state(index, oracle, executors) -> list[Finding]:
    out = []
    for executor in executors:
        if executor.in_transaction != oracle.in_transaction:
            out.append(
                Finding(
                    "txnstate",
                    index,
                    executor.label,
                    f"in_transaction={executor.in_transaction} but oracle "
                    f"{oracle.in_transaction}",
                )
            )
    return out


def _check_scheme_equivalence(index, executors) -> list[Finding]:
    """The three repro backends must agree bit-for-bit on schema and
    stored row encodings (run only between transactions)."""
    reference = executors[0]
    ref_schema = reference.db.schema_signature()
    ref_raw = reference.db.dump_all_raw()
    out = []
    for executor in executors[1:]:
        if executor.db.schema_signature() != ref_schema:
            out.append(
                Finding(
                    "scheme",
                    index,
                    executor.label,
                    f"schema differs from {reference.label}",
                )
            )
            continue
        raw = executor.db.dump_all_raw()
        if raw != ref_raw:
            tables = sorted(
                name
                for name in set(raw) | set(ref_raw)
                if raw.get(name) != ref_raw.get(name)
            )
            out.append(
                Finding(
                    "scheme",
                    index,
                    executor.label,
                    f"raw rows differ from {reference.label} in {tables}",
                )
            )
    return out


def _check_integrity(index, executors) -> list[Finding]:
    out = []
    for executor in executors:
        if executor.in_transaction:
            return out  # page accounting is defined between transactions
        try:
            executor.db.check_integrity()
        except DatabaseError as exc:
            out.append(Finding("invariant", index, executor.label, str(exc)))
    return out


def _finish(stmts, oracle, executors, sabotage) -> list[Finding]:
    """End-of-stream oracles: close any open transaction, compare final
    logical state with SQLite, then re-compare after a forced checkpoint
    and after a full power-fail + recovery cycle."""
    findings: list[Finding] = []
    if oracle.in_transaction or any(e.in_transaction for e in executors):
        # Minimized candidate streams may lose their COMMIT; close the
        # transaction in lockstep so the end-state checks are defined.
        commit = Stmt("COMMIT", kind="txn")
        oracle.execute(commit)
        for executor in executors:
            try:
                executor.execute(commit)
            except Exception as exc:
                findings.append(
                    Finding(
                        "crash", None, executor.label,
                        f"{type(exc).__name__}: {exc}",
                    )
                )

    expected = oracle.dump_logical()
    for executor in executors:
        try:
            if executor.dump_logical() != expected:
                findings.append(
                    Finding(
                        "final", None, executor.label,
                        "final logical state differs from sqlite",
                    )
                )
        except ReproError as exc:
            findings.append(Finding("final", None, executor.label, str(exc)))

    findings.extend(_check_scheme_equivalence(None, executors))
    findings.extend(_check_integrity(None, executors))

    # Checkpoint pass: flushing the WAL into the database file must not
    # change any answer.
    for executor in executors:
        try:
            executor.db.checkpoint()
        except ReproError as exc:
            findings.append(Finding("final", None, executor.label, str(exc)))
    findings.extend(_check_scheme_equivalence(None, executors))
    findings.extend(_check_integrity(None, executors))

    # Power-fail + recovery: rebuild each database over its crashed
    # system; recovered content must still match SQLite and each other.
    for executor in executors:
        system = executor.db.system
        system.power_fail()
        system.reboot()
        executor.db = build_database(
            executor.label,
            system=system,
            checkpoint_threshold=executor.db.wal.checkpoint_threshold,
        )
        if sabotage and executor.label == "nvwal":
            executor.db.executor = _SabotagedExecutor(executor.db)
        try:
            if executor.dump_logical() != expected:
                findings.append(
                    Finding(
                        "recovery", None, executor.label,
                        "post-recovery logical state differs from sqlite",
                    )
                )
            executor.db.check_integrity()
        except ReproError as exc:
            findings.append(Finding("recovery", None, executor.label, str(exc)))
    findings.extend(_check_scheme_equivalence(None, executors))
    return findings
