"""Grammar-based statement-stream generation for the differential fuzzer.

The generator is seeded and deterministic: one ``random.Random(seed)``
drives every choice, so a stream can be regenerated from its seed alone
and a recorded JSON stream replays bit-identically.

Divergence-avoidance discipline
-------------------------------

The generator's job is to explore the dialect *without* tripping known,
deliberate differences between SQLite's dynamic typing and the repro
engine's checked storage classes.  The rules, each guarding a specific
affinity or precision trap:

* TEXT values are alphabetic ASCII words (never numeric-looking, never
  empty), so TEXT-affinity coercions can't produce engine-specific
  numbers; overflow-sized payloads (1200–3000 chars) go via parameters.
* REAL values are multiples of 0.25 — exact in binary floating point,
  so sums and averages stay bit-identical regardless of evaluation
  order — and are always Python floats (the repro engine stores what
  you give it; SQLite's REAL affinity would silently widen an int).
* INTEGER values stay within ±10**9 so sums fit in SQLite's 64-bit
  integers.
* BLOBs travel only as parameters and are compared with =/!=/ordering
  (memcmp, identical to Python ``bytes`` ordering).
* Cross-storage-class comparisons are generated rarely and only in the
  two shapes that agree under both affinity rules and raw storage-class
  ordering given the value discipline above: INTEGER column vs
  alphabetic text, TEXT column vs integer literal.
* LIMIT appears only under ORDER BY the primary key (a unique total
  order, so row-for-row comparison is exact); ORDER BY a data column is
  compared as a multiset plus a per-engine sortedness check.
* Multi-row INSERTs always use fresh keys: SQLite aborts a whole
  statement on constraint failure while the repro engine applies rows
  until the error, so a mid-statement duplicate would diverge by
  design.  Deliberate duplicate-key INSERTs are single-row, and the
  auto-rowid (NULL primary key) path is exercised only in single-row
  INSERTs so an assigned rowid can never collide mid-statement.
* Primary-key UPDATEs move exactly one live key to a fresh one.

Each statement carries a ``kind`` that tells the runner how to compare
outcomes (rows, rowcount, or just ok-vs-error-class).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

_TYPES = ("INTEGER", "REAL", "TEXT", "BLOB")
_WORDS = (
    "alder", "birch", "cedar", "dogwood", "elm", "fir", "ginkgo",
    "hazel", "ironwood", "juniper", "katsura", "larch", "maple",
    "oak", "pine", "quince", "rowan", "spruce", "tupelo", "willow",
)
#: Fresh primary keys start here so they never collide with auto-assigned
#: rowids (max(live)+1) of the small keys inserted early on.
_FRESH_BASE = 1000


@dataclass(frozen=True)
class Stmt:
    """One generated statement plus how the runner must compare it.

    ``kind`` is one of ``select`` (compare rows), ``write`` (compare
    affected-row counts), ``ddl``/``txn``/``checkpoint`` (compare
    ok-vs-error-class).  ``ordered`` marks a fully-determined result
    order (ORDER BY the unique primary key); ``order_index`` points at
    the ORDER BY column inside the result tuples for the sortedness
    check when the order is only partial.
    """

    sql: str
    params: tuple = ()
    kind: str = "write"
    ordered: bool = False
    order_index: int | None = None
    order_desc: bool = False


def stmt_to_dict(stmt: Stmt) -> dict:
    return {
        "sql": stmt.sql,
        "params": [_encode_param(p) for p in stmt.params],
        "kind": stmt.kind,
        "ordered": stmt.ordered,
        "order_index": stmt.order_index,
        "order_desc": stmt.order_desc,
    }


def stmt_from_dict(data: dict) -> Stmt:
    return Stmt(
        sql=data["sql"],
        params=tuple(_decode_param(p) for p in data["params"]),
        kind=data["kind"],
        ordered=data["ordered"],
        order_index=data["order_index"],
        order_desc=data["order_desc"],
    )


def stream_to_dict(stmts, meta: dict | None = None) -> dict:
    """JSON-safe repro-file payload for a statement stream."""
    payload = {"statements": [stmt_to_dict(s) for s in stmts]}
    if meta:
        payload["meta"] = meta
    return payload


def stream_from_dict(data: dict) -> list[Stmt]:
    return [stmt_from_dict(d) for d in data["statements"]]


def _encode_param(value):
    if isinstance(value, bytes):
        return {"__blob__": value.hex()}
    return value


def _decode_param(value):
    if isinstance(value, dict) and "__blob__" in value:
        return bytes.fromhex(value["__blob__"])
    return value


@dataclass
class _TableModel:
    """What the generator believes about one table.

    ``live`` is a best-effort approximation (range deletes prune only
    tracked keys); it shapes the key distribution and never affects
    correctness.  ``fresh`` is the exception: it stays strictly above
    every key ever present, so fresh-key inserts can never collide."""

    name: str
    cols: tuple[tuple[str, str], ...]  # (name, type), col 0 is the pk
    live: set = field(default_factory=set)
    fresh: int = _FRESH_BASE
    indexes: dict = field(default_factory=dict)  # index name -> column

    def take_fresh(self) -> int:
        key = self.fresh
        self.fresh += 1
        return key


class StreamGenerator:
    """Seeded statement-stream generator over an evolving schema model."""

    def __init__(self, seed: int, max_tables: int = 3) -> None:
        self.rng = random.Random(seed)
        self.max_tables = max_tables
        self.tables: dict[str, _TableModel] = {}
        self.in_txn = False
        self._snapshot: dict[str, _TableModel] | None = None
        self._n_tables = 0
        self._n_indexes = 0

    # ------------------------------------------------------------------
    # stream assembly
    # ------------------------------------------------------------------

    def stream(self, n: int) -> list[Stmt]:
        """Generate ``n`` statements (plus a closing COMMIT if needed)."""
        out = [self._create_table()]
        while len(out) < n:
            out.append(self._next())
        if self.in_txn:
            out.append(self._txn_stmt("COMMIT"))
        return out

    def _next(self) -> Stmt:
        rng = self.rng
        roll = rng.random()
        if roll < 0.04 and len(self.tables) < self.max_tables:
            return self._create_table()
        if roll < 0.08:
            return self._deliberate_error()
        if roll < 0.14:
            return self._txn_control()
        if roll < 0.16 and not self.in_txn:
            return Stmt("CHECKPOINT", kind="checkpoint")
        if roll < 0.17 and len(self.tables) > 1:
            return self._drop_table()
        table = rng.choice(sorted(self.tables))
        model = self.tables[table]
        if roll < 0.22:
            return self._index_ddl(model)
        roll = rng.random()
        if roll < 0.32:
            return self._insert(model)
        if roll < 0.68:
            return self._select(model)
        if roll < 0.86:
            return self._update(model)
        return self._delete(model)

    # ------------------------------------------------------------------
    # schema / transactions
    # ------------------------------------------------------------------

    def _create_table(self) -> Stmt:
        name = f"t{self._n_tables}"
        self._n_tables += 1
        n_data = self.rng.randint(1, 3)
        cols = [("k", "INTEGER")]
        for i in range(n_data):
            cols.append((chr(ord("a") + i), self.rng.choice(_TYPES)))
        self.tables[name] = _TableModel(name, tuple(cols))
        defs = ", ".join(
            f"{cname} {ctype}" + (" PRIMARY KEY" if cname == "k" else "")
            for cname, ctype in cols
        )
        return Stmt(f"CREATE TABLE {name} ({defs})", kind="ddl")

    def _drop_table(self) -> Stmt:
        # SQLite drops a table's indexes with it; the model does too
        # (they live inside the table's model entry).
        name = self.rng.choice(sorted(self.tables))
        del self.tables[name]
        return Stmt(f"DROP TABLE {name}", kind="ddl")

    def _index_ddl(self, model: _TableModel) -> Stmt:
        """CREATE INDEX on a random column, or DROP an existing one.
        Index-backed scans stay divergence-safe by construction: the
        planner only narrows, so results are compared like any SELECT."""
        rng = self.rng
        if model.indexes and rng.random() < 0.35:
            name = rng.choice(sorted(model.indexes))
            del model.indexes[name]
            return Stmt(f"DROP INDEX {name}", kind="ddl")
        cname, _ctype = rng.choice(model.cols)
        name = f"i{self._n_indexes}"
        self._n_indexes += 1
        model.indexes[name] = cname
        return Stmt(
            f"CREATE INDEX {name} ON {model.name} ({cname})", kind="ddl"
        )

    def _txn_control(self) -> Stmt:
        if not self.in_txn:
            return self._txn_stmt("BEGIN")
        if self.rng.random() < 0.25:
            return self._txn_stmt("ROLLBACK")
        return self._txn_stmt("COMMIT")

    def _txn_stmt(self, word: str) -> Stmt:
        if word == "BEGIN":
            self.in_txn = True
            # Deep-copy the model so ROLLBACK can restore it; ``fresh``
            # stays monotonic via max() on restore.
            self._snapshot = {
                n: _TableModel(
                    m.name, m.cols, set(m.live), m.fresh, dict(m.indexes)
                )
                for n, m in self.tables.items()
            }
        elif word == "COMMIT":
            self.in_txn = False
            self._snapshot = None
        else:  # ROLLBACK
            self.in_txn = False
            assert self._snapshot is not None
            restored = self._snapshot
            for name, model in restored.items():
                if name in self.tables:
                    model.fresh = max(model.fresh, self.tables[name].fresh)
            self.tables = restored
            self._snapshot = None
        return Stmt(word, kind="txn")

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------

    def _insert(self, model: _TableModel) -> Stmt:
        rng = self.rng
        n_rows = rng.choice((1, 1, 1, 2, 3))
        rows_sql, params = [], []
        for _ in range(n_rows):
            if n_rows == 1 and rng.random() < 0.15:
                key = None  # auto-rowid path: both engines assign max+1
            else:
                key = model.take_fresh()
            values_sql = [self._render(key, params, literal_ok=True)]
            for _cname, ctype in model.cols[1:]:
                values_sql.append(self._render(self._value(ctype), params))
            rows_sql.append("(" + ", ".join(values_sql) + ")")
            if key is not None:
                model.live.add(key)
            else:
                # The assigned rowid is max(live)+1 < fresh; bump fresh
                # past it so the next fresh key cannot collide.
                model.fresh += 1
        return Stmt(
            f"INSERT INTO {model.name} VALUES " + ", ".join(rows_sql),
            tuple(params),
            kind="write",
        )

    def _select(self, model: _TableModel) -> Stmt:
        rng = self.rng
        names = [c for c, _t in model.cols]
        params: list = []
        roll = rng.random()
        if roll < 0.22:
            func, col = self._aggregate(model)
            where = self._where(model, params) if rng.random() < 0.6 else None
            sql = f"SELECT {func}({col}) FROM {model.name}" + _where_sql(where)
            return Stmt(sql, tuple(params), kind="select")
        if roll < 0.42:
            # ORDER BY pk (+ optional LIMIT): a unique total order.
            where = self._where(model, params) if rng.random() < 0.6 else None
            desc = rng.random() < 0.4
            limit = f" LIMIT {rng.randint(0, 6)}" if rng.random() < 0.5 else ""
            sql = (
                f"SELECT * FROM {model.name}"
                + _where_sql(where)
                + f" ORDER BY k{' DESC' if desc else ''}"
                + limit
            )
            return Stmt(sql, tuple(params), kind="select", ordered=True)
        if roll < 0.58:
            # ORDER BY a data column: partial order — multiset compare
            # plus a sortedness check on the projected order column.
            cname, _ctype = rng.choice(model.cols[1:])
            desc = rng.random() < 0.4
            where = self._where(model, params) if rng.random() < 0.5 else None
            sql = (
                f"SELECT * FROM {model.name}"
                + _where_sql(where)
                + f" ORDER BY {cname}{' DESC' if desc else ''}"
            )
            return Stmt(
                sql,
                tuple(params),
                kind="select",
                order_index=names.index(cname),
                order_desc=desc,
            )
        # plain scan, optionally projected and filtered
        where = self._where(model, params) if rng.random() < 0.7 else None
        if rng.random() < 0.35:
            proj = sorted(rng.sample(names, rng.randint(1, len(names))))
            cols = ", ".join(proj)
        else:
            cols = "*"
        sql = f"SELECT {cols} FROM {model.name}" + _where_sql(where)
        return Stmt(sql, tuple(params), kind="select")

    def _aggregate(self, model: _TableModel) -> tuple[str, str]:
        rng = self.rng
        numeric = [c for c, t in model.cols if t in ("INTEGER", "REAL")]
        comparable = [c for c, t in model.cols if t != "BLOB"]
        func = rng.choice(("COUNT", "COUNT", "SUM", "AVG", "MIN", "MAX"))
        if func == "COUNT":
            return func, rng.choice(["*"] + comparable)
        if func in ("SUM", "AVG"):
            return func, rng.choice(numeric)  # pk guarantees non-empty
        return func, rng.choice(comparable)

    def _update(self, model: _TableModel) -> Stmt:
        rng = self.rng
        if rng.random() < 0.08 and model.live:
            # pk move: exactly one live key to a fresh one (anything more
            # would risk mid-statement duplicates, which diverge by design).
            old = rng.choice(sorted(model.live))
            new = model.take_fresh()
            model.live.discard(old)
            model.live.add(new)
            return Stmt(
                f"UPDATE {model.name} SET k = {new} WHERE k = {old}",
                kind="write",
            )
        params: list = []
        sets = []
        data_cols = list(model.cols[1:])
        for cname, ctype in rng.sample(data_cols, rng.randint(1, len(data_cols))):
            if ctype == "INTEGER" and rng.random() < 0.3:
                sets.append(f"{cname} = {cname} + {rng.randint(-5, 5)}")
            else:
                sets.append(
                    f"{cname} = " + self._render(self._value(ctype), params)
                )
        where = self._where(model, params)
        sql = (
            f"UPDATE {model.name} SET " + ", ".join(sets) + _where_sql(where)
        )
        return Stmt(sql, tuple(params), kind="write")

    def _delete(self, model: _TableModel) -> Stmt:
        rng = self.rng
        if rng.random() < 0.5 and model.live:
            key = rng.choice(sorted(model.live))
            model.live.discard(key)
            where = f"k = {key}"
        else:
            lo = rng.randint(-5, _FRESH_BASE + 40)
            hi = lo + rng.randint(0, 8)
            where = f"k BETWEEN {lo} AND {hi}"
            model.live -= set(range(lo, hi + 1))
        return Stmt(f"DELETE FROM {model.name} WHERE {where}", kind="write")

    # ------------------------------------------------------------------
    # predicates and values
    # ------------------------------------------------------------------

    def _where(self, model: _TableModel, params: list, depth: int = 0) -> str:
        """A random predicate; leaves are column comparisons, interior
        nodes AND/OR/NOT, bounded to depth 2.  Parameter values are
        appended to ``params`` in left-to-right SQL order."""
        rng = self.rng
        if depth < 2 and rng.random() < 0.35:
            op = rng.choice(("AND", "OR"))
            left = self._where(model, params, depth + 1)
            right = self._where(model, params, depth + 1)
            combined = f"({left}) {op} ({right})"
            if rng.random() < 0.15:
                combined = f"NOT ({combined})"
            return combined
        return self._leaf_predicate(model, params)

    def _leaf_predicate(self, model: _TableModel, params: list) -> str:
        rng = self.rng
        roll = rng.random()
        if roll < 0.4:
            # pk comparison — exercises the range planner
            key = self._interesting_key(model)
            op = rng.choice(("=", "!=", "<", ">", "<=", ">="))
            if rng.random() < 0.2:
                return f"k BETWEEN {key} AND {key + rng.randint(0, 30)}"
            if rng.random() < 0.25:
                # arithmetic on the pk: division exercises truncation
                # toward zero and the divide-by-zero-is-NULL rule
                divisor = rng.choice((2, 3, 4, 0))
                return f"k / {divisor} {op} {key}"
            if rng.random() < 0.25:
                params.append(key)
                return f"k {op} ?"
            return f"k {op} {key}"
        # Bias toward indexed columns so the secondary-index access path
        # (and its superset-of-candidates discipline) gets real coverage.
        indexed = sorted(set(model.indexes.values()))
        if indexed and rng.random() < 0.5:
            cname = rng.choice(indexed)
            ctype = dict(model.cols)[cname]
        else:
            cname, ctype = rng.choice(model.cols)
        if roll < 0.5:
            return f"{cname} IS {'NOT ' if rng.random() < 0.5 else ''}NULL"
        if roll < 0.56:
            # rare cross-storage-class comparison (safe shapes only)
            if ctype == "TEXT":
                return (
                    f"{cname} {rng.choice(('<', '>', '=', '!='))} "
                    f"{rng.randint(-20, 20)}"
                )
            if ctype == "INTEGER":
                return (
                    f"{cname} {rng.choice(('<', '>', '=', '!='))} "
                    f"'{rng.choice(_WORDS)}'"
                )
        if roll < 0.60:
            # comparison against NULL: three-valued logic, never true
            return f"{cname} {rng.choice(('=', '!=', '<'))} NULL"
        value = self._value(ctype, allow_null=False, allow_overflow=False)
        op = rng.choice(
            ("=", "!=") if ctype == "BLOB" else ("=", "!=", "<", ">", "<=", ">=")
        )
        return f"{cname} {op} " + self._render(value, params)

    def _interesting_key(self, model: _TableModel) -> int:
        rng = self.rng
        if model.live and rng.random() < 0.6:
            return rng.choice(sorted(model.live))
        return rng.choice(
            (rng.randint(-3, 10), rng.randint(_FRESH_BASE - 2, model.fresh + 2))
        )

    def _value(self, ctype: str, allow_null: bool = True, allow_overflow: bool = True):
        rng = self.rng
        if allow_null and rng.random() < 0.12:
            return None
        if ctype == "INTEGER":
            return rng.choice(
                (rng.randint(-9, 9), rng.randint(-(10**9), 10**9))
            )
        if ctype == "REAL":
            return rng.randint(-4000, 4000) / 4.0
        if ctype == "TEXT":
            if allow_overflow and rng.random() < 0.06:
                word = rng.choice(_WORDS)
                reps = rng.randint(1200, 3000) // len(word) + 1
                return (word * reps)[: rng.randint(1200, 3000)]
            word = rng.choice(_WORDS)
            if rng.random() < 0.1:
                word = word[:3] + "'" + word[3:]
            return word
        # BLOB
        if allow_overflow and rng.random() < 0.06:
            return bytes(rng.getrandbits(8) for _ in range(rng.randint(1200, 2500)))
        return bytes(rng.getrandbits(8) for _ in range(rng.randint(1, 16)))

    def _render(self, value, params: list, literal_ok: bool = False) -> str:
        """Render a value as a literal or a ``?`` parameter.  BLOBs and
        overflow-sized text always go via parameters."""
        must_param = isinstance(value, bytes) or (
            isinstance(value, str) and len(value) > 100
        )
        if must_param or (not literal_ok and self.rng.random() < 0.3):
            params.append(value)
            return "?"
        return _literal(value)

    # ------------------------------------------------------------------
    # deliberate errors (compared by error class)
    # ------------------------------------------------------------------

    def _deliberate_error(self) -> Stmt:
        rng = self.rng
        choice = rng.randrange(9)
        if choice == 7:
            # CREATE INDEX on a missing table, or a duplicate index name
            if rng.random() < 0.5 and any(
                m.indexes for m in self.tables.values()
            ):
                name = rng.choice(
                    sorted(n for n, m in self.tables.items() if m.indexes)
                )
                model = self.tables[name]
                dup = rng.choice(sorted(model.indexes))
                return Stmt(
                    f"CREATE INDEX {dup} ON {name} (k)", kind="ddl"
                )
            return Stmt(
                "CREATE INDEX ix_err ON no_such_table (k)", kind="ddl"
            )
        if choice == 8:
            return Stmt("DROP INDEX no_such_index", kind="ddl")
        if choice == 0:
            return Stmt("SELECT * FROM no_such_table", kind="select")
        if choice == 1:
            name = rng.choice(sorted(self.tables))
            return Stmt(
                f"CREATE TABLE {name} (k INTEGER PRIMARY KEY)", kind="ddl"
            )
        if choice == 2 and any(m.live for m in self.tables.values()):
            # single-row duplicate insert: same constraint error both
            # sides, no partial-statement state either side
            name = rng.choice(sorted(n for n, m in self.tables.items() if m.live))
            model = self.tables[name]
            key = rng.choice(sorted(model.live))
            values = [str(key)] + [
                _literal(self._value(t, allow_overflow=False))
                for _c, t in model.cols[1:]
            ]
            return Stmt(
                f"INSERT INTO {name} VALUES ({', '.join(values)})", kind="write"
            )
        if choice == 3:
            # txn-state error: engines reject and stay in their current
            # state, so the model must not change either
            return Stmt("BEGIN" if self.in_txn else "COMMIT", kind="txn")
        if choice == 4:
            name = rng.choice(sorted(self.tables))
            return Stmt(f"SELECT no_such_col FROM {name}", kind="select")
        if choice == 5:
            return Stmt("SELEKT * FORM nothing", kind="select")
        # too-few parameters: prepare-time error in both engines
        name = rng.choice(sorted(self.tables))
        return Stmt(f"SELECT * FROM {name} WHERE k = ?", (), kind="select")


def _where_sql(where: str | None) -> str:
    return "" if where is None else " WHERE " + where


def _literal(value) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    return repr(value)
