"""CLI for the differential SQL fuzzer.

Examples::

    # sweep 20 seeds of 100 statements across all four executors
    python -m repro.difftest --seeds 20 --stmts 100 --jobs 4

    # prove the harness catches a planted wrong-result bug
    python -m repro.difftest --seeds 4 --stmts 60 --sabotage

    # replay a recorded failing stream
    python -m repro.difftest --replay difftest-repros/minimized-3.json

Exit status: 0 for a clean sweep (or a sabotage self-test that found the
planted bug and minimized it to at most 5 statements), 1 otherwise.  The
final digest line is a SHA-256 over the canonical JSON results; it is
bit-identical for any ``--jobs`` value.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
from dataclasses import dataclass

from repro.bench.harness import parallel_map
from repro.difftest.grammar import (
    StreamGenerator,
    stream_from_dict,
    stream_to_dict,
)
from repro.difftest.reduce import minimize_stream
from repro.difftest.runner import (
    DEFAULT_CHECKPOINT_THRESHOLD,
    run_stream,
)

#: Raw repro files written per sweep before we stop.
_MAX_REPROS = 5
#: The sabotage self-test must shrink its repro at least this far.
_SABOTAGE_MAX_STMTS = 5


@dataclass(frozen=True)
class DiffTask:
    """One seed's work unit (picklable for the process pool)."""

    seed: int
    stmts: int
    tables: int
    checkpoint_threshold: int
    integrity_every: int
    sabotage: bool


def generate(task: DiffTask):
    return StreamGenerator(task.seed, max_tables=task.tables).stream(task.stmts)


def run_diff_seed(task: DiffTask) -> dict:
    """Generate and run one seed's stream; JSON-safe result for digests."""
    stmts = generate(task)
    findings = run_stream(
        stmts,
        checkpoint_threshold=task.checkpoint_threshold,
        sabotage=task.sabotage,
        integrity_every=task.integrity_every,
    )
    return {
        "seed": task.seed,
        "statements": len(stmts),
        "findings": [
            {
                "kind": f.kind,
                "stmt_index": f.stmt_index,
                "executor": f.executor,
                "detail": f.detail,
            }
            for f in findings
        ],
    }


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.difftest",
        description="Differential SQL fuzzer: run generated statement "
        "streams through real SQLite and the repro engine on every WAL "
        "backend, in lockstep.",
    )
    parser.add_argument("--seeds", type=int, default=8, help="seeds 0..N-1 to sweep")
    parser.add_argument(
        "--stmts", type=int, default=60, help="statements per stream"
    )
    parser.add_argument(
        "--tables", type=int, default=3, help="max tables per stream"
    )
    parser.add_argument(
        "--checkpoint-threshold",
        type=int,
        default=DEFAULT_CHECKPOINT_THRESHOLD,
        help="WAL frames per checkpoint (small = frequent checkpoints)",
    )
    parser.add_argument(
        "--integrity-every",
        type=int,
        default=8,
        help="statements between structural integrity checks",
    )
    parser.add_argument("--jobs", type=int, default=1, help="parallel seed workers")
    parser.add_argument(
        "--out-dir",
        default="difftest-repros",
        help="directory for failing-stream JSON repro files",
    )
    parser.add_argument(
        "--replay", metavar="FILE", help="replay one recorded stream and exit"
    )
    parser.add_argument(
        "--sabotage",
        action="store_true",
        help="self-test: plant a wrong-result bug in the NVWAL executor's "
        "access path; the sweep must catch it and minimize the repro to "
        f"<= {_SABOTAGE_MAX_STMTS} statements",
    )
    parser.add_argument(
        "--no-minimize",
        action="store_true",
        help="record raw failing streams without shrinking them",
    )
    return parser


def _run_for_stream(stmts, args):
    return run_stream(
        stmts,
        checkpoint_threshold=args.checkpoint_threshold,
        sabotage=args.sabotage,
        integrity_every=args.integrity_every,
    )


def _replay(path: str, args) -> int:
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    stmts = stream_from_dict(data)
    meta = data.get("meta", {})
    if meta.get("sabotage"):
        args.sabotage = True
    first = _run_for_stream(stmts, args)
    second = _run_for_stream(stmts, args)
    print(f"replaying {path}: {len(stmts)} statement(s)")
    for finding in first:
        print(f"  {finding.format()}")
    if [f.format() for f in first] != [f.format() for f in second]:
        print("replay is NOT deterministic — harness bug")
        return 1
    if not first:
        print("  no findings (stream passes)")
        return 0
    print(f"  {len(first)} finding(s), deterministic across replays")
    return 1


def _write_repro(out_dir: str, name: str, payload: dict) -> str:
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, name)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    return path


def _minimize_and_verify(task: DiffTask, args) -> tuple[bool, int]:
    """Shrink the failing seed's stream, record it, and prove the replay
    is deterministic.  Returns (verified, minimized statement count)."""
    stmts = generate(task)

    def run(candidate):
        return _run_for_stream(candidate, args)

    small = minimize_stream(stmts, run)
    first = run(small)
    second = run(small)
    path = _write_repro(
        args.out_dir,
        f"minimized-{task.seed}.json",
        stream_to_dict(
            small,
            meta={
                "seed": task.seed,
                "sabotage": task.sabotage,
                "findings": [f.format() for f in first],
            },
        ),
    )
    print(f"minimized: {len(stmts)} -> {len(small)} statement(s)")
    for stmt in small:
        print(f"  {stmt.sql}" + (f"  -- params {stmt.params!r}" if stmt.params else ""))
    for finding in first:
        print(f"  {finding.format()}")
    print(f"minimized repro: {path}")
    if not first or [f.format() for f in first] != [f.format() for f in second]:
        print("minimized stream does NOT replay deterministically — harness bug")
        return False, len(small)
    print("minimized stream replays deterministically")
    return True, len(small)


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    if args.replay:
        return _replay(args.replay, args)
    tasks = [
        DiffTask(
            seed=seed,
            stmts=args.stmts,
            tables=args.tables,
            checkpoint_threshold=args.checkpoint_threshold,
            integrity_every=args.integrity_every,
            sabotage=args.sabotage,
        )
        for seed in range(args.seeds)
    ]
    print(
        f"difftest: {args.seeds} seed(s) x {args.stmts} statements, "
        f"4 executors (sqlite + {3} repro backends), jobs={args.jobs}"
        + (", SABOTAGE" if args.sabotage else "")
    )
    results = parallel_map(run_diff_seed, tasks, jobs=args.jobs)
    failing: list[DiffTask] = []
    total_stmts = 0
    for task, result in zip(tasks, results):
        total_stmts += result["statements"]
        n = len(result["findings"])
        if n:
            failing.append(task)
        print(f"seed {result['seed']}: {result['statements']} statement(s), "
              f"{n} finding(s)")
        for finding in result["findings"][:4]:
            print(
                f"  {finding['kind']} @ "
                f"{finding['stmt_index'] if finding['stmt_index'] is not None else 'end'} "
                f"[{finding['executor']}]: {finding['detail']}"
            )
    canonical = json.dumps(results, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
    print(f"total: {total_stmts} statement(s), {len(failing)} failing seed(s)")
    print(f"result digest: sha256:{digest}")

    if args.sabotage:
        if not failing:
            print("sabotage self-test FAILED: the planted bug went undetected")
            return 1
        print(
            f"sabotage self-test: planted bug detected in {len(failing)} seed(s)"
        )
        ok, n_stmts = _minimize_and_verify(failing[0], args)
        if not ok:
            return 1
        if n_stmts > _SABOTAGE_MAX_STMTS:
            print(
                f"sabotage self-test FAILED: minimized to {n_stmts} "
                f"statements (> {_SABOTAGE_MAX_STMTS})"
            )
            return 1
        return 0

    if not failing:
        return 0
    for i, task in enumerate(failing[:_MAX_REPROS]):
        stmts = generate(task)
        findings = run_diff_seed(task)["findings"]
        path = _write_repro(
            args.out_dir,
            f"stream-{task.seed}.json",
            stream_to_dict(
                stmts, meta={"seed": task.seed, "findings": findings}
            ),
        )
        print(f"failing stream: {path}")
    if not args.no_minimize:
        _minimize_and_verify(failing[0], args)
    return 1


if __name__ == "__main__":
    sys.exit(main())
