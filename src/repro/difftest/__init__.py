"""Differential SQL fuzzer: cross-check the stack against real SQLite.

NVWAL's claim is that byte-granularity differential logging and lazy
synchronization change *performance*, never *semantics* (PAPER.md
Sections 3.2 and 4).  This package makes that claim continuously
testable: a seeded grammar generator (:mod:`repro.difftest.grammar`)
emits statement streams in the supported dialect, and a runner
(:mod:`repro.difftest.runner`) executes each stream through four
executors in lockstep —

* stdlib :mod:`sqlite3` in WAL mode, the ground-truth oracle;
* the repro :class:`~repro.db.database.Database` on the NVWAL,
  file-WAL, and rollback-journal backends.

Any divergence in result sets, rowcounts, or error class is a finding.
A scheme-equivalence oracle additionally requires the three repro
backends to agree bit-for-bit on stored row encodings after every
commit and after a checkpoint + power-fail recovery cycle, and B-tree
invariants plus page accounting are re-checked between transactions.

Failing streams are recorded as JSON repro files and shrunk to the
statements that matter by :mod:`repro.difftest.reduce` (built on the
shared :mod:`repro.shrink` engine).  ``python -m repro.difftest`` is
the CLI; see EXPERIMENTS.md for triage workflow.
"""

from repro.difftest.grammar import Stmt, StreamGenerator, stream_from_dict, stream_to_dict
from repro.difftest.reduce import finding_kinds, minimize_stream
from repro.difftest.runner import Finding, run_stream

__all__ = [
    "Finding",
    "Stmt",
    "StreamGenerator",
    "finding_kinds",
    "minimize_stream",
    "run_stream",
    "stream_from_dict",
    "stream_to_dict",
]
