"""Executor adapters and outcome comparison for the differential fuzzer.

Four executors run every statement: real SQLite (stdlib :mod:`sqlite3`
on a WAL-mode file database) as ground truth, and the repro
:class:`~repro.db.database.Database` on each WAL backend.  Each adapter
normalizes a statement's result into an :class:`Outcome` — canonical
rows, an affected-row count, plain success, or an error *class* — and
:func:`compare_outcomes` decides whether two outcomes agree under the
statement's comparison kind.

Error classes, not messages, are the comparison unit: the engines word
their errors differently, but a statement that is a constraint
violation in one engine must be a constraint violation in the other.
SQLite exceptions are mapped onto the same taxonomy the repro engine
carries as ``ReproError.category``.
"""

from __future__ import annotations

import sqlite3
from dataclasses import dataclass, field

from repro.errors import ReproError

#: Canonical value tags; also the comparison rank (SQLite storage-class
#: order: NULL < numeric < TEXT < BLOB).
_NULL, _NUMERIC, _TEXT, _BLOB = 0, 1, 2, 3


def canon_value(value) -> tuple:
    """(rank, typename, value) — typed so int 2 and float 2.0 differ."""
    if value is None:
        return (_NULL, "null", None)
    if isinstance(value, bool):
        return (_NUMERIC, "int", int(value))
    if isinstance(value, int):
        return (_NUMERIC, "int", value)
    if isinstance(value, float):
        return (_NUMERIC, "float", value)
    if isinstance(value, str):
        return (_TEXT, "text", value)
    if isinstance(value, (bytes, bytearray, memoryview)):
        return (_BLOB, "blob", bytes(value))
    return (9, type(value).__name__, repr(value))


def canon_row(row) -> tuple:
    return tuple(canon_value(v) for v in row)


def value_sort_key(cv: tuple):
    """Total deterministic order over canonical values: storage-class
    rank first, then the value (int and float inter-compare numerically),
    then the typename so 2 and 2.0 order deterministically."""
    rank, tname, value = cv
    if rank == _NULL:
        return (0, 0, "")
    return (rank, value, tname)


def row_sort_key(crow: tuple):
    return tuple(value_sort_key(cv) for cv in crow)


@dataclass
class Outcome:
    """One executor's result for one statement."""

    status: str  # "rows" | "count" | "ok" | "error"
    rows: list = field(default_factory=list)  # canonical rows, engine order
    count: int = 0
    error: str | None = None  # error class when status == "error"
    detail: str = ""  # human-readable message; never compared


def compare_outcomes(
    kind: str, oracle: Outcome, other: Outcome, ordered: bool = False
) -> str | None:
    """Mismatch description, or None if the outcomes agree for ``kind``.

    SELECT rows compare as multisets unless ``ordered`` (the statement
    pinned a total order via ORDER BY the primary key), in which case
    they must match row for row.
    """
    if (oracle.status == "error") != (other.status == "error"):
        if oracle.status == "error":
            return f"oracle error [{oracle.error}] but engine succeeded"
        return f"engine error [{other.error}] ({other.detail}) but oracle succeeded"
    if oracle.status == "error":
        if oracle.error != other.error:
            return f"error class {other.error} != oracle {oracle.error}"
        return None
    if kind == "select":
        if ordered:
            if other.rows != oracle.rows:
                return (
                    f"ordered result differs: engine {len(other.rows)} "
                    f"row(s), oracle {len(oracle.rows)} row(s)"
                )
            return None
        ours = sorted((row_sort_key(r), r) for r in other.rows)
        theirs = sorted((row_sort_key(r), r) for r in oracle.rows)
        if ours != theirs:
            return (
                f"result multiset differs: engine {len(other.rows)} row(s), "
                f"oracle {len(oracle.rows)} row(s)"
            )
        return None
    if kind == "write":
        if oracle.count != other.count:
            return f"rowcount {other.count} != oracle {oracle.count}"
        return None
    return None  # ddl / txn / checkpoint: both succeeded


def rows_sorted(rows: list, index: int, descending: bool) -> bool:
    """Whether canonical ``rows`` are sorted on column ``index`` under
    SQLite ordering (NULLs are the smallest storage class)."""
    keys = [value_sort_key(row[index]) for row in rows]
    return keys == sorted(keys, reverse=descending)


# ----------------------------------------------------------------------
# SQLite ground truth
# ----------------------------------------------------------------------


def classify_sqlite(exc: sqlite3.Error) -> str:
    """Map a sqlite3 exception onto the repro error taxonomy."""
    if isinstance(exc, sqlite3.IntegrityError):
        return "constraint"
    if isinstance(exc, sqlite3.ProgrammingError):
        return "sql"  # e.g. wrong number of bindings
    message = str(exc).lower()
    if (
        "no such table" in message
        or "no such index" in message
        or "already exists" in message
    ):
        return "schema"
    if "no such column" in message or "syntax error" in message:
        return "sql"
    if "transaction" in message:
        return "txn"
    return "db"


class SqliteOracle:
    """Real SQLite in WAL mode on a file database."""

    label = "sqlite"

    def __init__(self, path: str) -> None:
        self.con = sqlite3.connect(path)
        self.con.isolation_level = None  # explicit BEGIN/COMMIT only
        self.con.execute("PRAGMA journal_mode=WAL")

    @property
    def in_transaction(self) -> bool:
        return self.con.in_transaction

    def execute(self, stmt) -> Outcome:
        sql = stmt.sql
        if stmt.kind == "checkpoint":
            sql = "PRAGMA wal_checkpoint(PASSIVE)"
        try:
            cur = self.con.execute(sql, stmt.params)
        except sqlite3.Error as exc:
            return Outcome("error", error=classify_sqlite(exc), detail=str(exc))
        if stmt.kind == "select":
            return Outcome("rows", rows=[canon_row(r) for r in cur.fetchall()])
        if stmt.kind == "write":
            return Outcome("count", count=cur.rowcount)
        return Outcome("ok")

    def dump_logical(self) -> dict:
        """{table: sorted canonical rows} for the final-state compare."""
        tables = [
            name
            for (name,) in self.con.execute(
                "SELECT name FROM sqlite_master WHERE type = 'table'"
            )
        ]
        out = {}
        for name in sorted(tables):
            rows = [canon_row(r) for r in self.con.execute(f"SELECT * FROM {name}")]
            out[name] = sorted(rows, key=row_sort_key)
        return out

    def close(self) -> None:
        self.con.close()


# ----------------------------------------------------------------------
# repro engine
# ----------------------------------------------------------------------


class ReproExecutor:
    """One repro Database on one WAL backend, behind the same interface."""

    def __init__(self, label: str, db) -> None:
        self.label = label
        self.db = db

    @property
    def in_transaction(self) -> bool:
        return self.db.in_transaction

    def execute(self, stmt) -> Outcome:
        try:
            result = self.db.execute(stmt.sql, stmt.params)
        except ReproError as exc:
            return Outcome("error", error=exc.category, detail=str(exc))
        if stmt.kind == "select":
            return Outcome("rows", rows=[canon_row(r) for r in result])
        if stmt.kind == "write":
            return Outcome("count", count=result if isinstance(result, int) else 0)
        return Outcome("ok")

    def dump_logical(self) -> dict:
        out = {}
        for name, rows in self.db.dump_all().items():
            out[name] = sorted((canon_row(r) for r in rows), key=row_sort_key)
        return out
