"""Configuration and cost-model constants for the simulated platforms.

The paper evaluates NVWAL on two machines:

* *Tuna*, an ARM Cortex-A9 NVRAM-emulation board: 32-byte cache lines,
  NVRAM write latency adjustable between 400 ns and 2000 ns, and a persist
  barrier emulated as a 1 usec delay (Section 5).
* *Nexus 5*, a Snapdragon 800 phone: 64-byte cache lines, eMMC flash
  formatted with EXT4, NVRAM emulated as a DRAM range whose write latency is
  varied between 2 usec and 230 usec (Section 5.4).

Every latency knob of the simulation lives here so experiments can sweep them
and so the calibration against the paper's absolute numbers is auditable.
The headline calibration targets are:

* one single-record insert transaction executes in ~424 usec on Tuna, of
  which the ordering-constraint overhead (dccmvac + dmb + kernel mode
  switch) is ~19.3 usec, i.e. 4.6% (Figure 6);
* a 32-insert transaction executes in ~5828 usec with ~46.5 usec of
  ordering overhead, i.e. 0.8% (Figure 6);
* on the Nexus 5 profile, optimized WAL on eMMC sustains ~541 txn/sec while
  NVWAL UH+LS+Diff at 2 usec NVRAM latency sustains ~5812 txn/sec
  (Figure 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

#: Size of a database B-tree page, matching SQLite's default (Section 3.2).
PAGE_SIZE = 4096

#: NVRAM writes are atomic at this granularity (Section 4.1: "we assume that
#: NVRAM devices guarantee atomic writes for 8 bytes").
ATOMIC_UNIT = 8

#: Stock SQLite WAL frame header size in a log *file* (Section 5.4).
FILE_FRAME_HEADER_SIZE = 24

#: NVWAL frame header size in NVRAM (Section 3.2: "a 32 bytes WAL frame
#: header").
NV_FRAME_HEADER_SIZE = 32


@dataclass(frozen=True)
class NvramConfig:
    """The emulated NVRAM DIMM."""

    #: Total capacity of the NVRAM region in bytes.
    size: int = 64 * 1024 * 1024
    #: Time for the device to persist one cache line (the Tuna FPGA knob).
    write_latency_ns: int = 500
    #: Read latency per cache line; NVRAM reads are close to DRAM.
    read_latency_ns: int = 120
    #: Persist-atomicity unit in bytes.
    atomic_unit: int = ATOMIC_UNIT


@dataclass(frozen=True)
class CacheConfig:
    """The CPU cache and its flush unit.

    The flush unit is pipelined: a ``dccmvac`` is non-blocking (Section 4),
    so back-to-back flushes overlap.  A flush issued while the pipeline is
    busy completes ``write_latency / pipeline_depth`` after its predecessor;
    a flush issued to an idle pipeline completes one full write latency
    later.  A ``dmb`` between flushes drains the pipeline, which is why
    eager synchronization pays up to ~25% more for the same number of
    flushes (Figure 5).
    """

    #: Cache line size in bytes (32 on Tuna, 64 on the Nexus 5).
    line_size: int = 32
    #: Cost of issuing one dccmvac instruction (decode + L1 lookup).
    #: Calibrated so a full-page flush (128 lines) costs ~13 usec of issue
    #: time, putting the 1-insert ordering overhead near the paper's
    #: 19.3 usec (Section 5.1).
    flush_issue_ns: int = 85
    #: Overlap factor of the flush pipeline.
    pipeline_depth: int = 12
    #: Write-back capacity: when more lines than this are dirty, the oldest
    #: migrate to the memory subsystem on their own, their write latency
    #: hidden under ongoing memcpy work.  This is what makes lazy
    #: synchronization's dccmvac "masked by the overhead of memcpy()"
    #: (Section 5.1) — eager synchronization flushes lines while they are
    #: still cache-hot and pays the full pipeline latency.
    eviction_threshold_lines: int = 192
    #: Fixed cost of a dmb instruction (excluding the wait for completions).
    dmb_ns: int = 60
    #: Cost of the persist barrier; the paper emulates it with a 1 usec
    #: delay of nop instructions (Section 5.3).
    persist_barrier_ns: int = 1000
    #: Kernel-mode switch cost; ``cache_line_flush()`` is a system call on
    #: Android/ARM because dccmvac needs privileged register access
    #: (Algorithm 2).
    syscall_ns: int = 1000
    #: CPU-side cost of copying one byte with memcpy (cache-resident).
    memcpy_ns_per_byte: float = 0.35
    #: Fixed per-call memcpy overhead.
    memcpy_base_ns: int = 90


@dataclass(frozen=True)
class BlockDevConfig:
    """The eMMC flash device of the Nexus 5 baseline."""

    #: Device page (and filesystem block) size.
    page_size: int = 4096
    #: Number of pages on the device.
    num_pages: int = 65536
    #: Program latency of one 4 KB page.  Calibrated so the optimized WAL
    #: baseline sustains ~541 txn/sec (Figure 9).
    write_latency_ns: int = 205_000
    #: Read latency of one 4 KB page.
    read_latency_ns: int = 60_000
    #: Cost of a cache-flush/barrier command (what fsync ultimately issues).
    flush_cmd_ns: int = 270_000


@dataclass(frozen=True)
class DbCosts:
    """CPU cost model of the database engine itself.

    SQLite throughput is dominated by CPU work, not I/O (Section 1: I/O is
    ~30% of query processing even on slow storage).  These constants charge
    that CPU work on the simulated clock so that the ordering-constraint
    overhead lands at the percentages reported in Figure 6.
    """

    #: Per-transaction fixed cost: begin/commit bookkeeping, journal-mode
    #: dispatch, schema lookups.
    txn_base_ns: int = 205_000
    #: Per-statement cost: SQL parse + plan + VDBE-equivalent execution.
    statement_ns: int = 140_000
    #: Per B-tree page visited during a statement (binary search, slot
    #: bookkeeping).
    btree_page_visit_ns: int = 9_000
    #: Per WAL frame assembled (header construction, checksum, bookkeeping).
    frame_assembly_ns: int = 14_000
    #: Checksum computation per byte (used by both file WAL and NVWAL CS).
    checksum_ns_per_byte: float = 0.30


@dataclass(frozen=True)
class HeapoCosts:
    """Cost model of the kernel-level NVRAM heap manager (Heapo).

    Kernel allocation is expensive because it crosses the protection
    boundary and must persist its own allocation metadata failure-atomically
    (Section 3.3).
    """

    #: nvmalloc: syscall + bitmap update + metadata flush + persist barrier.
    nvmalloc_ns: int = 21_000
    #: nvfree: syscall + metadata flush.
    nvfree_ns: int = 9_000
    #: nv_pre_malloc: like nvmalloc but the caller batches one call per
    #: large block, so the per-frame cost is amortized (Section 3.3).
    nv_pre_malloc_ns: int = 21_000
    #: nv_malloc_set_used_flag: syscall + one 8-byte metadata persist.
    set_used_flag_ns: int = 5_000


@dataclass(frozen=True)
class SystemConfig:
    """Aggregate configuration of one simulated platform."""

    name: str = "tuna"
    nvram: NvramConfig = field(default_factory=NvramConfig)
    cache: CacheConfig = field(default_factory=CacheConfig)
    blockdev: BlockDevConfig = field(default_factory=BlockDevConfig)
    db_costs: DbCosts = field(default_factory=DbCosts)
    heapo: HeapoCosts = field(default_factory=HeapoCosts)
    #: Probability that a dirty 8-byte unit still in a volatile tier at the
    #: moment of a crash happens to have reached NVRAM anyway (cache
    #: eviction, memory-controller drain...).  Exercised by crash tests.
    crash_land_probability: float = 0.5
    #: Database page size.
    page_size: int = PAGE_SIZE

    def with_nvram_write_latency(self, latency_ns: int) -> "SystemConfig":
        """Return a copy of this config with a different NVRAM write
        latency — the knob every latency-sweep experiment turns."""
        return replace(self, nvram=replace(self.nvram, write_latency_ns=latency_ns))


def tuna(write_latency_ns: int = 500) -> SystemConfig:
    """The Tuna ARM NVRAM-emulation board profile (Figures 5-7).

    32-byte cache lines, slow in-order core, NVRAM write latency adjustable
    between 400 and 2000 ns.
    """
    return SystemConfig(
        name="tuna",
        nvram=NvramConfig(write_latency_ns=write_latency_ns),
        cache=CacheConfig(line_size=32),
    )


def nexus5(write_latency_ns: int = 2000) -> SystemConfig:
    """The Nexus 5 profile (Figures 8-9).

    The Snapdragon 800 is much faster than Tuna's Cortex-A9, so the CPU cost
    model is scaled down; cache lines are 64 bytes, and the flash baseline
    uses the eMMC device model.  NVWAL on this platform amortizes the
    checkpoint overhead over 1000 transactions (Section 5.4), which the
    harness models by excluding checkpoint time from throughput.
    """
    return SystemConfig(
        name="nexus5",
        nvram=NvramConfig(write_latency_ns=write_latency_ns),
        cache=CacheConfig(
            line_size=64,
            flush_issue_ns=60,
            # The Snapdragon's memory subsystem overlaps emulated-NVRAM
            # writes less aggressively in the paper's nop-insertion scheme
            # (a nop delay follows *each* clflush); a shallow pipeline
            # reproduces the ~47 usec LS-vs-flash crossover of Figure 9.
            pipeline_depth=2,
            # Eviction masking barely applies: with a nop delay per
            # clflush, even aged lines pay the emulated latency when
            # flushed, so the window is one page of 64-byte lines.
            eviction_threshold_lines=64,
            dmb_ns=25,
            syscall_ns=1200,
            persist_barrier_ns=1000,
            memcpy_ns_per_byte=0.12,
            memcpy_base_ns=40,
        ),
        db_costs=DbCosts(
            txn_base_ns=65_000,
            statement_ns=50_000,
            btree_page_visit_ns=3_200,
            frame_assembly_ns=5_000,
            checksum_ns_per_byte=0.10,
        ),
        heapo=HeapoCosts(
            nvmalloc_ns=9_000,
            nvfree_ns=4_000,
            nv_pre_malloc_ns=9_000,
            set_used_flag_ns=2_200,
        ),
    )


#: Registry of named platform profiles, used by the benchmark CLI.
PROFILES = {
    "tuna": tuna,
    "nexus5": nexus5,
}
