"""Seeded workloads for the crash-consistency torture harness.

A workload is a list of *transactions*, each a tuple of keyed-table
operations (``insert``/``update``/``delete``).  Everything is derived
from one integer seed, so a failing run can be replayed from nothing
but its trace file.  The pure-Python model in :func:`model_states`
computes the expected table contents at every transaction boundary —
the oracle the torture driver checks recovered databases against.
"""

from __future__ import annotations

import random

TABLE = "t"
DDL = f"CREATE TABLE {TABLE} (k INTEGER PRIMARY KEY, v TEXT)"

#: Sentinel for the pre-DDL state: the table does not exist at all.
NO_TABLE = None

#: RNG stream constants, distinct from the crash/media/IO streams so the
#: workload shape never correlates with fault placement.
_WORKLOAD_MUL = 0xB5297A4D
_WORKLOAD_ADD = 0x68E31DA4

Op = tuple  # (kind, key, value-or-None)
Txn = tuple  # tuple[Op, ...]


def generate_txns(seed: int, op_count: int, txn_size: int = 3) -> tuple[Txn, ...]:
    """Deterministic workload: ``op_count`` ops grouped into transactions
    of 1..``txn_size`` ops.

    Inserts target free keys, updates/deletes target live keys, so the
    SQL semantics match the trivial dict model exactly.  A small key
    space forces key reuse (insert after delete), which exercises
    differential logging's full-image-then-diff transitions.
    """
    rng = random.Random((seed * _WORKLOAD_MUL + _WORKLOAD_ADD) & 0xFFFFFFFF)
    key_space = max(8, op_count // 2)
    live: set[int] = set()
    ops: list[Op] = []
    for i in range(op_count):
        free = [k for k in range(1, key_space + 1) if k not in live]
        roll = rng.random()
        if not live or (free and roll < 0.5):
            k = rng.choice(free)
            live.add(k)
            kind = "insert"
        elif roll < 0.8 or not live:
            k = rng.choice(sorted(live))
            kind = "update"
        else:
            k = rng.choice(sorted(live))
            live.discard(k)
            kind = "delete"
        value = None
        if kind != "delete":
            value = f"s{seed}.{i}." + "x" * rng.randint(4, 24)
        ops.append((kind, k, value))
    txns: list[Txn] = []
    index = 0
    while index < len(ops):
        take = rng.randint(1, txn_size)
        txns.append(tuple(ops[index : index + take]))
        index += take
    return tuple(txns)


def apply_txn(db, txn: Txn) -> None:
    """Run one workload transaction against a database."""
    if len(txn) == 1:
        _apply_op(db, txn[0])
        return
    with db.transaction():
        for op in txn:
            _apply_op(db, op)


def apply_txn_grouped(db, txn: Txn) -> None:
    """Run one workload transaction into the shared group-commit epoch.

    Unlike :func:`apply_txn`, even single-op transactions go through an
    explicit BEGIN/``group_commit`` pair: the point of the grouped
    workload is that *no* transaction is individually durable until
    ``flush_group`` closes the epoch.
    """
    db.begin()
    try:
        for op in txn:
            _apply_op(db, op)
    except BaseException:
        if db.pager.in_transaction:
            db.rollback()
        raise
    db.group_commit()


def _apply_op(db, op: Op) -> None:
    kind, key, value = op
    if kind == "insert":
        db.execute(f"INSERT INTO {TABLE} VALUES (?, ?)", (key, value))
    elif kind == "update":
        db.execute(f"UPDATE {TABLE} SET v = ? WHERE k = ?", (value, key))
    elif kind == "delete":
        db.execute(f"DELETE FROM {TABLE} WHERE k = ?", (key,))
    else:
        raise ValueError(f"unknown workload op kind: {kind!r}")


def run_workload(db, txns: tuple[Txn, ...], group_epoch: int = 0) -> None:
    """The full scripted run: DDL first (boundary 1), then every
    transaction (boundaries 2..N).

    With ``group_epoch`` > 0 the transactions commit through the WAL's
    group-commit path instead: each joins the open epoch, and the epoch
    is closed (one flush + persist-barrier sequence) every
    ``group_epoch`` transactions and again after the last one.  The DDL
    stays individually durable — it models the setup phase before the
    service's coalescer takes over.
    """
    db.execute(DDL)
    if group_epoch <= 0:
        for txn in txns:
            apply_txn(db, txn)
        return
    for i, txn in enumerate(txns):
        apply_txn_grouped(db, txn)
        if (i + 1) % group_epoch == 0:
            db.flush_group()
    db.flush_group()


def model_states(txns: tuple[Txn, ...]) -> list:
    """Expected table contents at every transaction boundary.

    ``states[b]`` is the sorted ``(k, v)`` row list after ``b`` committed
    transactions (the DDL counts as transaction 1); ``states[0]`` is
    :data:`NO_TABLE`.  A correctly recovered database must match one of
    these boundary states — anything else is a torn or lost transaction.
    """
    states: list = [NO_TABLE, []]
    rows: dict[int, str] = {}
    for txn in txns:
        for kind, key, value in txn:
            if kind == "delete":
                rows.pop(key, None)
            else:
                rows[key] = value
        states.append(sorted(rows.items()))
    return states
