"""The torture driver: sweep every crash point, check every invariant.

One :class:`TortureScenario` is a fully reproducible experiment: a seed,
a scheme, a scripted workload, a crash point (a primitive-CPU-op index,
as counted by the crash controller), optionally a second crash point
*inside recovery*, and optionally a :class:`FaultPlan`.  Scenarios are
plain data — they pickle across process pools and round-trip through
JSON trace files, which is what makes failing runs replayable and
minimizable.

The oracles generalize the paper's Section 4.3 case analysis:

* **committed-prefix durability / atomicity** — the recovered table must
  equal the model state at *some* transaction boundary the crash point
  allows: the last committed transaction or the in-flight one (power
  alone), down to the last completed checkpoint when media decay or an
  asynchronous-commit scheme may legitimately shed WAL tail state.
* **heap consistency** — live NVRAM allocations must be non-overlapping
  and in-bounds, and descriptor quarantine may only happen under media
  faults.
* **no leaks** — after a post-recovery checkpoint, no ``nvwal-blk``
  allocation may remain live.
* **recovery idempotence** — a second power cycle after the checkpoint
  must reproduce the same table.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.config import tuna
from repro.db.database import Database
from repro.errors import PowerFailure
from repro.faults import FaultPlan, IoFaultSpec, MediaFaultSpec
from repro.system import System
from repro.torture.workload import (
    DDL,
    NO_TABLE,
    TABLE,
    apply_txn,
    apply_txn_grouped,
    generate_txns,
    model_states,
    run_workload,
)
from repro.wal.base import SyncMode
from repro.wal.frames import commit_mark_bytes
from repro.wal.nvwal import NvwalBackend, NvwalScheme

#: Small checkpoint threshold (in WAL frames) so a 30-op workload crosses
#: several checkpoints and the sweep exercises crash-during-checkpoint.
DEFAULT_TORTURE_THRESHOLD = 12

DB_NAME = "torture.db"

#: Schemes the harness knows how to build, by trace-friendly name.
SCHEMES = {
    "eager": NvwalScheme.eager,
    "ls": NvwalScheme.ls,
    "ls_diff": NvwalScheme.ls_diff,
    "cs_diff": NvwalScheme.cs_diff,
    "uh_ls": NvwalScheme.uh_ls,
    "uh_ls_diff": NvwalScheme.uh_ls_diff,
    "uh_cs_diff": NvwalScheme.uh_cs_diff,
}

#: Default per-seed scheme rotation (the three the crash matrix covers).
ROTATION = ("uh_ls_diff", "ls", "eager")


class SabotagedNvwalBackend(NvwalBackend):
    """Deliberately broken backend for harness self-tests.

    The commit mark is stored but never flushed or fenced — exactly the
    bug Algorithm 1's final persist barrier exists to prevent.  The mark
    sits in a volatile cache line, so a crash after "commit" loses the
    transaction with roughly the landing probability.  A healthy torture
    run against this backend MUST produce durability violations; if it
    does not, the harness itself is broken.
    """

    def _write_commit_mark(self, last_frame_addr, checksum, explicit):
        mark_offset, mark = commit_mark_bytes(self._checkpoint_id, checksum)
        mark_addr = last_frame_addr + mark_offset
        self.cpu.store(mark_addr, mark)
        self.persist_domain.after_store(mark_addr, len(mark))
        # Injected bug: no dmb / cache_line_flush / persist_barrier.


@dataclass(frozen=True)
class TortureScenario:
    """One reproducible crash experiment (picklable, JSON-serializable)."""

    seed: int
    scheme: str
    txns: tuple  # tuple of transactions; each a tuple of (kind, k, v) ops
    crash_point: int = 0  # 0: run to completion, then cut power
    recovery_crash_point: int | None = None
    plan: FaultPlan | None = None
    checkpoint_threshold: int = DEFAULT_TORTURE_THRESHOLD
    sabotage: bool = False
    #: > 0: commit through the WAL's group-commit path, closing the
    #: shared epoch every ``group_epoch`` transactions.  Durability then
    #: arrives only at epoch closes, so the state oracle restricts the
    #: allowed boundaries to them: a crash inside an open epoch must
    #: lose the whole epoch, never a transaction from a closed one.
    group_epoch: int = 0


@dataclass(frozen=True)
class Profile:
    """Measured shape of a scenario's uncrashed run."""

    total_ops: int  # crash points available in the workload
    bounds: tuple  # bounds[b]: op count when boundary b completed
    ckpt_events: tuple  # (op count at completion, boundary checkpointed)


@dataclass(frozen=True)
class ScenarioOutcome:
    """What one scenario run produced."""

    violations: tuple
    crashed: bool = False
    crashed_in_recovery: bool = False
    matched_boundary: int | None = None
    #: Primitive CPU ops observed inside reboot + WAL recovery — the sweep
    #: space for ``recovery_crash_point`` (0 when recovery only performs
    #: failure-atomic heap-metadata updates, which cannot be interrupted).
    recovery_ops: int = 0


# ----------------------------------------------------------------------
# scenario construction helpers
# ----------------------------------------------------------------------


def build_fault_plan(seed: int, faults) -> FaultPlan | None:
    """The standard torture fault plan for a seed.

    ``power`` is implicit (every scenario cuts power); ``media`` adds
    NVRAM decay at each power loss, ``io`` adds transient eMMC command
    failures.  Rates are chosen so a *correct* stack must absorb them:
    transient errors stay below the retry budget, and media decay is
    recoverable by salvage + quarantine.
    """
    faults = set(faults)
    unknown = faults - {"power", "media", "io"}
    if unknown:
        raise ValueError(f"unknown fault kinds: {sorted(unknown)}")
    media = None
    io = None
    if "media" in faults:
        media = MediaFaultSpec(bit_flips=2, stuck_units=1, poison_units=1)
    if "io" in faults:
        io = IoFaultSpec(read_error_rate=0.02, write_error_rate=0.02)
    if media is None and io is None:
        return None
    return FaultPlan(seed=seed, media=media, io=io)


def make_scenario(
    seed: int,
    ops: int,
    scheme: str,
    faults=("power",),
    txn_size: int = 3,
    checkpoint_threshold: int = DEFAULT_TORTURE_THRESHOLD,
    sabotage: bool = False,
    group_epoch: int = 0,
) -> TortureScenario:
    """Generate the base (no-crash-point) scenario for a seed."""
    if scheme not in SCHEMES:
        raise ValueError(f"unknown scheme {scheme!r}; pick from {sorted(SCHEMES)}")
    return TortureScenario(
        seed=seed,
        scheme=scheme,
        txns=generate_txns(seed, ops, txn_size),
        plan=build_fault_plan(seed, faults),
        checkpoint_threshold=checkpoint_threshold,
        sabotage=sabotage,
        group_epoch=group_epoch,
    )


def _make_system(scenario: TortureScenario) -> System:
    system = System(tuna(), seed=scenario.seed)
    if scenario.plan is not None:
        system.inject_faults(scenario.plan)
    return system


def _make_db(system: System, scenario: TortureScenario) -> Database:
    backend_cls = SabotagedNvwalBackend if scenario.sabotage else NvwalBackend
    wal = backend_cls(
        system,
        SCHEMES[scenario.scheme](),
        checkpoint_threshold=scenario.checkpoint_threshold,
    )
    return Database(system, wal=wal, name=DB_NAME)


# ----------------------------------------------------------------------
# profiling: measure the crash-point space and checkpoint schedule
# ----------------------------------------------------------------------


def profile_scenario(scenario: TortureScenario) -> Profile:
    """Run the workload once, uncrashed, counting primitive CPU ops.

    Every run of the same scenario executes identically up to its crash
    point, so the measured transaction boundaries and checkpoint
    completions are valid for the whole sweep.
    """
    system = _make_system(scenario)
    db = _make_db(system, scenario)
    counter = [0]

    def hook(_op: str) -> None:
        counter[0] += 1

    system.cpu.crash_hook = hook
    bounds = [0]
    boundary = [1]
    ckpt_events: list[tuple[int, int]] = []
    wal_checkpoint = db.wal.checkpoint

    def tracked_checkpoint() -> int:
        written = wal_checkpoint()
        ckpt_events.append((counter[0], boundary[0]))
        return written

    db.wal.checkpoint = tracked_checkpoint
    db.execute(DDL)
    bounds.append(counter[0])
    group = scenario.group_epoch
    for i, txn in enumerate(scenario.txns):
        boundary[0] = i + 2
        if group > 0:
            apply_txn_grouped(db, txn)
            if (i + 1) % group == 0:
                db.flush_group()
        else:
            apply_txn(db, txn)
        bounds.append(counter[0])
    if group > 0:
        # The drain flush belongs to the last boundary: a crash before it
        # completes must not count that epoch as committed.
        db.flush_group()
        bounds[-1] = counter[0]
    system.cpu.crash_hook = None
    return Profile(
        total_ops=counter[0],
        bounds=tuple(bounds),
        ckpt_events=tuple(ckpt_events),
    )


def measure_recovery_ops(scenario: TortureScenario) -> int:
    """Primitive ops spent recovering from this scenario's crash.

    Runs the scenario to its crash point, cuts power, then counts the
    ops in reboot + database recovery — the sweep space for
    ``recovery_crash_point``.  Returns 0 if the crash point is past the
    end of the workload.
    """
    system, crashed = _run_until_crash(scenario)
    if not crashed:
        return 0
    system.power_fail()

    def do_recovery() -> None:
        system.reboot()
        _make_db(system, scenario)

    return system.crash.count_ops(do_recovery)


# ----------------------------------------------------------------------
# running one scenario
# ----------------------------------------------------------------------


def _run_until_crash(scenario: TortureScenario) -> tuple[System, bool]:
    """Execute the workload, crashing at ``crash_point`` if reachable."""
    system = _make_system(scenario)
    db = _make_db(system, scenario)
    crashed = False
    if scenario.crash_point > 0:
        system.crash.arm(scenario.crash_point)
    try:
        run_workload(db, scenario.txns, group_epoch=scenario.group_epoch)
    except PowerFailure:
        crashed = True
    if not crashed and scenario.crash_point > 0:
        system.crash.disarm()
    return system, crashed


def run_scenario(
    scenario: TortureScenario, profile: Profile | None = None
) -> ScenarioOutcome:
    """Run one scenario end to end and check every oracle.

    Any exception other than the injected :class:`PowerFailure` is itself
    an invariant violation (recovery code must degrade, not crash), so
    the harness converts it into an ``error:`` finding instead of dying.
    """
    if profile is None:
        profile = profile_scenario(scenario)
    try:
        return _run_scenario_checked(scenario, profile)
    except Exception as exc:  # noqa: BLE001 - any escape is a finding
        return ScenarioOutcome(
            violations=(
                f"error: unhandled {type(exc).__name__} escaped the "
                f"crash/recovery path: {exc}",
            )
        )


def _run_scenario_checked(
    scenario: TortureScenario, profile: Profile
) -> ScenarioOutcome:
    states = model_states(scenario.txns)
    last_boundary = len(states) - 1
    system, crashed = _run_until_crash(scenario)
    # The machine goes down even on a clean run: recovery must also cope
    # with a power cut in the idle state after the last commit.
    system.power_fail()

    crashed_in_recovery = False
    recovery_ops = 0
    if crashed and scenario.recovery_crash_point:
        try:
            system.reboot(arm_after_ops=scenario.recovery_crash_point)
            db = _make_db(system, scenario)
            system.crash.disarm()
        except PowerFailure:
            crashed_in_recovery = True
            system.power_fail()
            system.reboot()
            db = _make_db(system, scenario)
    else:
        # Count recovery's own primitive ops while we are here: the sweep
        # driver uses the measurement to pick crash points whose recovery
        # is worth crashing *into*.
        counter = [0]

        def hook(_op: str) -> None:
            counter[0] += 1

        system.cpu.crash_hook = hook
        try:
            system.reboot()
            db = _make_db(system, scenario)
        finally:
            system.cpu.crash_hook = None
        recovery_ops = counter[0]

    violations: list[str] = []
    allowed = _allowed_boundaries(scenario, profile, crashed, last_boundary)
    matched, state_violations = _match_state(db, states, allowed)
    violations.extend(state_violations)
    violations.extend(_check_heap(system, scenario))
    violations.extend(_check_leaks_and_idempotence(system, db, scenario, states, matched))
    return ScenarioOutcome(
        violations=tuple(violations),
        crashed=crashed,
        crashed_in_recovery=crashed_in_recovery,
        matched_boundary=matched,
        recovery_ops=recovery_ops,
    )


def _close_boundaries(group_epoch: int, last_boundary: int) -> list[int]:
    """Model boundaries that coincide with an epoch close under group
    commit: the pre-DDL state, the individually-durable DDL, every
    ``group_epoch``-th transaction, and the final drain flush."""
    closes = [0]
    if last_boundary >= 1:
        closes.append(1)
    b = 1 + group_epoch
    while b < last_boundary:
        closes.append(b)
        b += group_epoch
    if last_boundary > 1:
        closes.append(last_boundary)
    return closes


def _allowed_boundaries(
    scenario: TortureScenario, profile: Profile, crashed: bool, last_boundary: int
) -> set[int]:
    """Which model boundaries a recovered database may legitimately show."""
    if scenario.group_epoch > 0:
        # Group commit quantizes durability to epoch closes: recovery
        # replays the longest valid prefix of *whole* epochs.  A crash
        # inside an open epoch loses every transaction in it; a crash
        # during the close sequence may land the whole epoch atomically
        # (the next close boundary) or none of it — never a part.
        closes = _close_boundaries(scenario.group_epoch, last_boundary)
        if crashed:
            k = scenario.crash_point
            committed = max(b for b in closes if profile.bounds[b] <= k - 1)
            pending = [b for b in closes if b > committed]
            high = pending[0] if pending else committed
        else:
            committed = high = last_boundary
        allowed = {b for b in closes if committed <= b <= high}
    else:
        if crashed:
            k = scenario.crash_point
            committed = max(
                b for b, ops in enumerate(profile.bounds) if ops <= k - 1
            )
            high = min(committed + 1, last_boundary)  # the in-flight txn may land
        else:
            committed = high = last_boundary
        allowed = set(range(committed, high + 1))
    # Media decay and asynchronous (checksum) commit may legitimately shed
    # the WAL tail — but never below the last completed checkpoint, whose
    # pages are fsynced into the database file.
    relaxed = (
        scenario.plan is not None and scenario.plan.media is not None
    ) or SCHEMES[scenario.scheme]().sync is SyncMode.CHECKSUM
    if relaxed:
        floor = 0
        cutoff = scenario.crash_point - 1 if crashed else profile.total_ops
        for ops_at_completion, boundary in profile.ckpt_events:
            if ops_at_completion <= cutoff:
                floor = max(floor, boundary)
        if scenario.group_epoch > 0:
            closes = _close_boundaries(scenario.group_epoch, last_boundary)
            return {b for b in closes if floor <= b <= high}
        return set(range(floor, high + 1))
    return allowed


def _match_state(db: Database, states: list, allowed: set[int]):
    """Committed-prefix durability + atomicity oracle."""
    if not db.table_exists(TABLE):
        if 0 in allowed and states[0] is NO_TABLE:
            return 0, []
        return None, [
            "state: table missing after recovery although the DDL "
            f"transaction must have survived (allowed boundaries {sorted(allowed)})"
        ]
    rows = sorted(db.dump_table(TABLE))
    for b in sorted(allowed, reverse=True):
        if b > 0 and rows == states[b]:
            return b, []
    return None, [
        f"state: recovered table ({len(rows)} rows) matches no allowed "
        f"transaction boundary {sorted(allowed)} — a committed transaction "
        "was lost, torn, or resurrected"
    ]


def _check_heap(system: System, scenario: TortureScenario) -> list[str]:
    """Tri-state heap consistency: in-bounds, non-overlapping, and no
    quarantine unless media decay could have caused it."""
    violations = []
    heapo = system.heapo
    allocs = sorted(heapo.live_allocations(), key=lambda a: a.addr)
    cursor = heapo.heap_start
    for alloc in allocs:
        if alloc.addr < cursor:
            violations.append(
                f"heap: allocation {alloc.name!r} at {alloc.addr:#x} overlaps "
                "the previous live allocation"
            )
        if alloc.addr + alloc.size > system.nvram.size:
            violations.append(
                f"heap: allocation {alloc.name!r} extends past the device end"
            )
        cursor = max(cursor, alloc.addr + alloc.size)
    media = scenario.plan is not None and scenario.plan.media is not None
    if heapo.quarantined_slots() and not media:
        violations.append(
            "heap: descriptor quarantine without media faults — attach "
            f"rejected slots {heapo.quarantined_slots()} on a clean device"
        )
    return violations


def _check_leaks_and_idempotence(
    system: System,
    db: Database,
    scenario: TortureScenario,
    states: list,
    matched: int | None,
) -> list[str]:
    """Checkpoint the recovered database, then prove nothing leaked and a
    second power cycle reproduces the same table."""
    try:
        db.checkpoint()
    except Exception as exc:  # noqa: BLE001
        return [
            f"error: checkpoint after recovery raised "
            f"{type(exc).__name__}: {exc}"
        ]
    leaks = [a for a in system.heapo.live_allocations() if a.name == "nvwal-blk"]
    violations = []
    if leaks:
        violations.append(
            f"leak: {len(leaks)} nvwal-blk block(s) still live after a "
            "post-recovery checkpoint"
        )
    if matched is None:
        return violations  # state already wrong; idempotence is meaningless
    try:
        system.power_fail()
        system.reboot()
        db2 = _make_db(system, scenario)
        if matched == 0:
            stable = not db2.table_exists(TABLE)
        else:
            stable = (
                db2.table_exists(TABLE)
                and sorted(db2.dump_table(TABLE)) == states[matched]
            )
        if not stable:
            violations.append(
                "idempotence: a second power cycle after the checkpoint "
                f"does not reproduce boundary {matched}"
            )
    except Exception as exc:  # noqa: BLE001
        violations.append(
            f"error: second recovery raised {type(exc).__name__}: {exc}"
        )
    return violations


# ----------------------------------------------------------------------
# per-seed sweep (module-level and picklable for parallel_map)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SeedTask:
    """Everything one seed's sweep needs, in picklable form."""

    seed: int
    ops: int
    scheme: str
    faults: tuple = ("power",)
    txn_size: int = 3
    stride: int = 1
    recovery_points: int = 2
    checkpoint_threshold: int = DEFAULT_TORTURE_THRESHOLD
    sabotage: bool = False
    group_epoch: int = 0


def run_seed(task: SeedTask) -> dict:
    """Sweep every crash point for one seed; returns a JSON-able summary.

    Phase 1 arms the crash controller at op 1, 1+stride, ... across the
    whole workload (checkpoints included), plus the no-crash power cut,
    and measures how many primitive ops each crash's *recovery* performs.
    Phase 2 takes the ``recovery_points`` crash points with the richest
    recoveries (chain truncation, root recreation — most recoveries are
    pure failure-atomic metadata and have nothing to interrupt) and
    sweeps every op inside them — crash during recovery, Section 4.3's
    hardest case.
    """
    base = make_scenario(
        task.seed,
        task.ops,
        task.scheme,
        faults=task.faults,
        txn_size=task.txn_size,
        checkpoint_threshold=task.checkpoint_threshold,
        sabotage=task.sabotage,
        group_epoch=task.group_epoch,
    )
    profile = profile_scenario(base)
    runs = 0
    crashes = 0
    failures: list[dict] = []

    def record(scenario: TortureScenario, outcome: ScenarioOutcome) -> None:
        nonlocal runs, crashes
        runs += 1
        crashes += int(outcome.crashed)
        if outcome.violations:
            failures.append(
                {
                    "scenario": scenario_to_dict(scenario),
                    "violations": list(outcome.violations),
                }
            )

    recovery_depth: list[tuple[int, int]] = []  # (-ops, crash point)
    for k in [0, *range(1, profile.total_ops + 1, task.stride)]:
        scenario = replace(base, crash_point=k)
        outcome = run_scenario(scenario, profile)
        record(scenario, outcome)
        if k > 0 and outcome.crashed and outcome.recovery_ops > 0:
            recovery_depth.append((-outcome.recovery_ops, k))

    recovery_runs = 0
    for neg_ops, k in sorted(recovery_depth)[: task.recovery_points]:
        crashed_scenario = replace(base, crash_point=k)
        for r in range(1, -neg_ops + 1):
            scenario = replace(crashed_scenario, recovery_crash_point=r)
            record(scenario, run_scenario(scenario, profile))
            recovery_runs += 1

    return {
        "seed": task.seed,
        "scheme": base.scheme,
        "total_ops": profile.total_ops,
        "boundaries": len(profile.bounds) - 1,
        "checkpoints": len(profile.ckpt_events),
        "runs": runs,
        "crashes": crashes,
        "recovery_runs": recovery_runs,
        "failures": failures,
    }


# ----------------------------------------------------------------------
# trace (de)serialization
# ----------------------------------------------------------------------


def scenario_to_dict(scenario: TortureScenario) -> dict:
    """JSON-able form of a scenario, for trace files."""
    return {
        "seed": scenario.seed,
        "scheme": scenario.scheme,
        "txns": [[list(op) for op in txn] for txn in scenario.txns],
        "crash_point": scenario.crash_point,
        "recovery_crash_point": scenario.recovery_crash_point,
        "plan": scenario.plan.to_json() if scenario.plan else None,
        "checkpoint_threshold": scenario.checkpoint_threshold,
        "sabotage": scenario.sabotage,
        "group_epoch": scenario.group_epoch,
    }


def scenario_from_dict(data: dict) -> TortureScenario:
    """Rebuild a scenario from :func:`scenario_to_dict` output."""
    return TortureScenario(
        seed=data["seed"],
        scheme=data["scheme"],
        txns=tuple(
            tuple(tuple(op) for op in txn) for txn in data["txns"]
        ),
        crash_point=data.get("crash_point", 0),
        recovery_crash_point=data.get("recovery_crash_point"),
        plan=FaultPlan.from_json(data["plan"]) if data.get("plan") else None,
        checkpoint_threshold=data.get(
            "checkpoint_threshold", DEFAULT_TORTURE_THRESHOLD
        ),
        sabotage=data.get("sabotage", False),
        group_epoch=data.get("group_epoch", 0),
    )
