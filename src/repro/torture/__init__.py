"""Crash-consistency torture harness (``python -m repro.torture``).

Sweeps every crash point of a seeded workload — including crashes inside
recovery and checkpointing — layers media/IO fault plans on top, checks
recovery invariants (committed-prefix durability, atomicity, heap
tri-state consistency, no leaked log blocks, recovery idempotence), and
records failing scenarios as replayable, auto-minimized JSON traces.
"""

from repro.torture.driver import (
    Profile,
    SabotagedNvwalBackend,
    ScenarioOutcome,
    SeedTask,
    TortureScenario,
    build_fault_plan,
    make_scenario,
    measure_recovery_ops,
    profile_scenario,
    run_scenario,
    run_seed,
    scenario_from_dict,
    scenario_to_dict,
)
from repro.torture.minimize import minimize, violation_codes
from repro.torture.workload import (
    DDL,
    TABLE,
    apply_txn,
    apply_txn_grouped,
    generate_txns,
    model_states,
    run_workload,
)

__all__ = [
    "DDL",
    "Profile",
    "SabotagedNvwalBackend",
    "ScenarioOutcome",
    "SeedTask",
    "TABLE",
    "TortureScenario",
    "apply_txn",
    "apply_txn_grouped",
    "build_fault_plan",
    "generate_txns",
    "make_scenario",
    "measure_recovery_ops",
    "minimize",
    "model_states",
    "profile_scenario",
    "run_scenario",
    "run_seed",
    "run_workload",
    "scenario_from_dict",
    "scenario_to_dict",
    "violation_codes",
]
