"""CLI for the crash-consistency torture harness.

Examples::

    # sweep 20 seeds, 30 ops each, media decay on top of power loss
    python -m repro.torture --seeds 20 --ops 30 --faults media,power --jobs 4

    # prove the harness catches a real bug (persist barrier removed)
    python -m repro.torture --seeds 4 --ops 12 --sabotage

    # replay a recorded failing trace
    python -m repro.torture --replay torture-traces/minimized-3.json

Exit status: 0 for a clean sweep (or a sabotage self-test that found,
minimized, and deterministically replayed the planted bug), 1 otherwise.
The final digest line is a SHA-256 over the canonical JSON results; it is
bit-identical for any ``--jobs`` value, which is what makes parallel
sweeps trustworthy.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys

from repro.bench.harness import parallel_map
from repro.torture.driver import (
    DEFAULT_TORTURE_THRESHOLD,
    ROTATION,
    SCHEMES,
    SeedTask,
    run_scenario,
    run_seed,
    scenario_from_dict,
    scenario_to_dict,
)
from repro.torture.minimize import minimize

#: Raw traces written per run before we stop (one per failure otherwise).
_MAX_TRACES = 5


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.torture",
        description="Crash-consistency torture harness: sweep every crash "
        "point, layer media/IO faults, and check recovery invariants.",
    )
    parser.add_argument("--seeds", type=int, default=8, help="seeds 0..N-1 to sweep")
    parser.add_argument("--ops", type=int, default=30, help="workload operations per seed")
    parser.add_argument(
        "--txn-size", type=int, default=3, help="max ops per transaction"
    )
    parser.add_argument(
        "--faults",
        default="power",
        help="comma list of power,media,io (power loss is always exercised; "
        "media adds NVRAM decay, io adds transient eMMC errors)",
    )
    parser.add_argument(
        "--scheme",
        default="rotate",
        choices=["rotate", *sorted(SCHEMES)],
        help="NVWAL scheme; 'rotate' cycles %s by seed" % (ROTATION,),
    )
    parser.add_argument(
        "--stride", type=int, default=1, help="crash-point stride (1 = every op)"
    )
    parser.add_argument(
        "--recovery-points",
        type=int,
        default=2,
        help="commit boundaries whose recovery is swept op by op",
    )
    parser.add_argument(
        "--checkpoint-threshold",
        type=int,
        default=DEFAULT_TORTURE_THRESHOLD,
        help="WAL frames per checkpoint (small = frequent checkpoints)",
    )
    parser.add_argument(
        "--group-epoch",
        type=int,
        default=0,
        metavar="N",
        help="commit through the WAL group-commit path, closing the shared "
        "epoch every N transactions (0 = per-transaction durability); the "
        "state oracle then only accepts whole-epoch boundaries",
    )
    parser.add_argument("--jobs", type=int, default=1, help="parallel seed workers")
    parser.add_argument(
        "--trace-dir",
        default="torture-traces",
        help="directory for failing-trace JSON files",
    )
    parser.add_argument(
        "--replay", metavar="TRACE", help="replay one recorded trace and exit"
    )
    parser.add_argument(
        "--sabotage",
        action="store_true",
        help="self-test: run a backend whose commit mark is never flushed; "
        "the sweep must find, minimize, and deterministically replay a "
        "durability violation",
    )
    parser.add_argument(
        "--no-minimize",
        action="store_true",
        help="write raw failing traces without shrinking them",
    )
    return parser


def _replay(path: str) -> int:
    with open(path, encoding="utf-8") as fh:
        trace = json.load(fh)
    scenario = scenario_from_dict(trace["scenario"])
    first = run_scenario(scenario)
    second = run_scenario(scenario)
    print(f"replaying {path}: seed={scenario.seed} scheme={scenario.scheme} "
          f"crash_point={scenario.crash_point}")
    for violation in first.violations:
        print(f"  {violation}")
    if first.violations != second.violations:
        print("replay is NOT deterministic — harness bug")
        return 1
    if not first.violations:
        print("  no violations (scenario passes)")
        return 0
    print(f"  {len(first.violations)} violation(s), deterministic across replays")
    return 1


def _write_trace(trace_dir: str, name: str, payload: dict) -> str:
    os.makedirs(trace_dir, exist_ok=True)
    path = os.path.join(trace_dir, name)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    return path


def _minimize_and_verify(failure: dict, trace_dir: str) -> bool:
    """Shrink the first failure, record it, and prove the replay is
    deterministic.  Returns True on a verified deterministic trace."""
    scenario = scenario_from_dict(failure["scenario"])
    small = minimize(scenario)
    first = run_scenario(small)
    second = run_scenario(small)
    path = _write_trace(
        trace_dir,
        f"minimized-{small.seed}.json",
        {"scenario": scenario_to_dict(small), "violations": list(first.violations)},
    )
    ops = sum(len(txn) for txn in small.txns)
    print(
        f"minimized: {ops} op(s) in {len(small.txns)} txn(s), "
        f"crash_point={small.crash_point}"
        + (
            f", recovery_crash_point={small.recovery_crash_point}"
            if small.recovery_crash_point
            else ""
        )
        + (", faults kept" if small.plan else ", faults dropped")
    )
    for violation in first.violations:
        print(f"  {violation}")
    print(f"minimized trace: {path}")
    if not first.violations or first.violations != second.violations:
        print("minimized trace does NOT replay deterministically — harness bug")
        return False
    print("minimized trace replays deterministically")
    return True


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    if args.replay:
        return _replay(args.replay)
    faults = tuple(
        sorted({f.strip() for f in args.faults.split(",") if f.strip()})
    )
    tasks = [
        SeedTask(
            seed=seed,
            ops=args.ops,
            scheme=(
                ROTATION[seed % len(ROTATION)]
                if args.scheme == "rotate"
                else args.scheme
            ),
            faults=faults,
            txn_size=args.txn_size,
            stride=args.stride,
            recovery_points=args.recovery_points,
            checkpoint_threshold=args.checkpoint_threshold,
            sabotage=args.sabotage,
            group_epoch=args.group_epoch,
        )
        for seed in range(args.seeds)
    ]
    print(
        f"torture: {args.seeds} seed(s) x {args.ops} ops, scheme={args.scheme}, "
        f"faults={','.join(faults)}, stride={args.stride}, jobs={args.jobs}"
        + (f", GROUP-EPOCH={args.group_epoch}" if args.group_epoch else "")
        + (", SABOTAGE" if args.sabotage else "")
    )
    results = parallel_map(run_seed, tasks, jobs=args.jobs)
    total_runs = 0
    failures: list[dict] = []
    for result in results:
        total_runs += result["runs"] + result["recovery_runs"]
        failures.extend(result["failures"])
        print(
            f"seed {result['seed']} [{result['scheme']}]: "
            f"{result['runs']} crash-point runs, {result['recovery_runs']} "
            f"recovery-crash runs, {result['checkpoints']} checkpoint(s), "
            f"{len(result['failures'])} violation(s)"
        )
    canonical = json.dumps(results, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
    print(f"total: {total_runs} runs, {len(failures)} violating scenario(s)")
    print(f"result digest: sha256:{digest}")

    if args.sabotage:
        if not failures:
            print("sabotage self-test FAILED: the planted bug went undetected")
            return 1
        print(f"sabotage self-test: planted bug detected in "
              f"{len(failures)} scenario(s)")
        return 0 if _minimize_and_verify(failures[0], args.trace_dir) else 1

    if not failures:
        return 0
    for i, failure in enumerate(failures[:_MAX_TRACES]):
        path = _write_trace(
            args.trace_dir,
            f"trace-{failure['scenario']['seed']}-{i}.json",
            failure,
        )
        print(f"failing trace: {path}")
    if not args.no_minimize:
        _minimize_and_verify(failures[0], args.trace_dir)
    return 1


if __name__ == "__main__":
    sys.exit(main())
