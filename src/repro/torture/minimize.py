"""Shrink a failing torture scenario to its essence.

A raw failing trace can carry dozens of irrelevant transactions and a
fault plan that has nothing to do with the bug.  The minimizer shrinks
in the order that preserves the most meaning:

1. **operations** — drop whole transactions, then individual ops;
2. **crash point** — prefer no crash at all, otherwise the earliest
   failing op index (and the earliest recovery crash point);
3. **fault set** — drop the whole plan, a whole fault class, then
   individual fault counts.

Every candidate is re-run; a shrink is kept only if the *same class* of
violation (the ``code:`` prefix of the finding) still fires, so the
minimizer cannot drift from a durability bug to an unrelated error.
All runs are seeded and deterministic, so the minimized scenario fails
identically every time it is replayed.
"""

from __future__ import annotations

from dataclasses import replace

from repro.faults import FaultPlan, MediaFaultSpec
from repro.shrink import shrink_sequence
from repro.torture.driver import ScenarioOutcome, TortureScenario, run_scenario


def violation_codes(outcome: ScenarioOutcome) -> frozenset:
    """The ``code`` prefixes (``state``, ``leak``, ...) of the findings."""
    return frozenset(v.split(":", 1)[0] for v in outcome.violations)


def minimize(scenario: TortureScenario) -> TortureScenario:
    """Greedy shrink preserving at least one original violation class."""
    codes = violation_codes(run_scenario(scenario))
    if not codes:
        raise ValueError("scenario does not fail; nothing to minimize")

    def still_fails(candidate: TortureScenario) -> bool:
        return bool(violation_codes(run_scenario(candidate)) & codes)

    scenario = _shrink_txns(scenario, still_fails)
    scenario = _shrink_ops(scenario, still_fails)
    scenario = _shrink_crash_points(scenario, still_fails)
    scenario = _shrink_faults(scenario, still_fails)
    return scenario


def _shrink_txns(scenario, still_fails):
    """Drop whole transactions (chunked greedy, via the shared engine)."""
    kept = shrink_sequence(
        scenario.txns,
        lambda txns: still_fails(replace(scenario, txns=tuple(txns))),
    )
    return replace(scenario, txns=tuple(kept))


def _shrink_ops(scenario, still_fails):
    """Drop individual ops inside the surviving transactions."""
    for ti in reversed(range(len(scenario.txns))):
        txn = scenario.txns[ti]
        if len(txn) <= 1:
            continue  # _shrink_txns already tried dropping it whole

        def rebuild(ops, ti=ti):
            return replace(
                scenario,
                txns=scenario.txns[:ti]
                + (tuple(ops),)
                + scenario.txns[ti + 1 :],
            )

        kept = shrink_sequence(
            txn, lambda ops: still_fails(rebuild(ops)), min_size=1
        )
        scenario = rebuild(kept)
    return scenario


def _shrink_crash_points(scenario, still_fails):
    """Prefer no crash; otherwise the earliest op index that still fails."""
    if scenario.crash_point > 0:
        candidate = replace(scenario, crash_point=0, recovery_crash_point=None)
        if still_fails(candidate):
            return candidate
        for k in range(1, scenario.crash_point):
            candidate = replace(scenario, crash_point=k)
            if still_fails(candidate):
                scenario = candidate
                break
    if scenario.recovery_crash_point:
        candidate = replace(scenario, recovery_crash_point=None)
        if still_fails(candidate):
            return candidate
        for r in range(1, scenario.recovery_crash_point):
            candidate = replace(scenario, recovery_crash_point=r)
            if still_fails(candidate):
                return candidate
    return scenario


def _shrink_faults(scenario, still_fails):
    """Drop the plan, then fault classes, then individual fault counts."""
    plan = scenario.plan
    if plan is None:
        return scenario
    candidate = replace(scenario, plan=None)
    if still_fails(candidate):
        return candidate
    for stripped in (
        FaultPlan(seed=plan.seed, media=plan.media, io=None),
        FaultPlan(seed=plan.seed, media=None, io=plan.io),
    ):
        if (stripped.media, stripped.io) != (plan.media, plan.io):
            candidate = replace(scenario, plan=stripped)
            if still_fails(candidate):
                scenario = candidate
                plan = stripped
                break
    if plan.media is not None:
        for field in ("bit_flips", "stuck_units", "poison_units"):
            if getattr(plan.media, field) == 0:
                continue
            media = replace(plan.media, **{field: 0})
            if media == MediaFaultSpec():
                continue  # dropping the last fault is the all-None case above
            stripped = FaultPlan(seed=plan.seed, media=media, io=plan.io)
            candidate = replace(scenario, plan=stripped)
            if still_fails(candidate):
                scenario = candidate
                plan = stripped
    return scenario
