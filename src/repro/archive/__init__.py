"""Durable segment archive: the NVWAL cold store on simulated ext4.

NVWAL keeps the latency-critical ack path in NVRAM; NVLog
(arXiv:2408.02911) fronts a slower disk path with that NVM log.  This
package is the disk side of that hybrid: sealed replication epochs spill
from the in-memory :class:`~repro.replication.ship.ShippingLog` into
CRC-guarded segment files on :mod:`repro.storage` ext4, where they serve
follower reseeds and survive primary power loss.

See :mod:`repro.archive.store` for the mechanics.
"""

from repro.archive.store import ArchiveConfig, SegmentArchive

__all__ = ["ArchiveConfig", "SegmentArchive"]
