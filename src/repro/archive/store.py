"""The segment archive: sealed WAL epochs on an ext4 cold store.

One :class:`SegmentArchive` owns a directory on a (simulated) ext4
filesystem and persists the replication stream as two kinds of files,
both in the shipped-segment wire format (:mod:`repro.replication.segment`)
so one decoder covers the wire, the follower WAL, and the disk tier:

* ``epochs-<seq>.seg`` — a run of consecutive sealed epochs, appended as
  they seal and rolled to a fresh file every ``epochs_per_file`` epochs.
  Appends are buffered (OS page cache) and fsynced every ``sync_every``
  epochs: the NVWAL ack path never waits on the disk tier, so a power
  cut can tear the newest file mid-segment.  Recovery salvages the
  longest valid closed-epoch prefix and truncates the torn tail — the
  same discipline the NVWAL media scan applies.
* ``snap-<seq>.seg`` — one full-state snapshot (``FLAG_SNAPSHOT``), the
  *checkpoint floor*.  The newest durable snapshot plus the epoch run
  above it is the reseed chain for any follower, however far behind or
  divergent.  Floors advance by *folding on disk*: the previous floor's
  page images plus the archived epoch diffs produce the next snapshot
  without touching the live database.

GC unlinks whole epoch files strictly behind ``min(fleet's minimum
durable cursor, checkpoint floor)`` — never an epoch a live follower
still needs, never past the floor — and retires superseded snapshots.
Every delete batch is journaled immediately so a power cut mid-GC lands
on one side of the unlink, not half-way.

All device I/O goes through the filesystem's bounded retry-with-backoff
(:data:`repro.storage.ext4._IO_RETRIES`), absorbing transient
:class:`~repro.errors.IoError` bursts from an installed
:class:`~repro.faults.BlockIoFaultInjector` up to its
``max_consecutive`` budget.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.replication.node import PSEUDO_PAGE
from repro.replication.segment import (
    FLAG_SNAPSHOT,
    Segment,
    decode_stream,
    encode_segment,
)
from repro.wal.frames import NvFrame

_EPOCH_PREFIX = "epochs-"
_SNAP_PREFIX = "snap-"
_SUFFIX = ".seg"


def _epoch_name(seq: int) -> str:
    return f"{_EPOCH_PREFIX}{seq:010d}{_SUFFIX}"


def _snap_name(seq: int) -> str:
    return f"{_SNAP_PREFIX}{seq:010d}{_SUFFIX}"


def _name_seq(name: str, prefix: str) -> int:
    return int(name[len(prefix) : -len(_SUFFIX)])


@dataclass(frozen=True)
class ArchiveConfig:
    """Cold-store tunables.

    ``sync_every`` bounds how many sealed epochs can be torn off the
    newest file by a power cut (they remain durable on the primary's
    NVRAM and on followers; the archive merely re-salvages a shorter
    prefix).  ``snapshot_every`` paces floor advancement: a new floor is
    folded once that many epochs are durable above the current one.
    ``gc_every`` paces the cursor-driven file trim.
    """

    epochs_per_file: int = 8
    sync_every: int = 4
    snapshot_every: int = 24
    gc_every: int = 8


class _EpochFile:
    """Bookkeeping for one on-disk epoch run."""

    __slots__ = ("name", "first_seq", "last_seq", "size")

    def __init__(self, name: str, first_seq: int, last_seq: int, size: int) -> None:
        self.name = name
        self.first_seq = first_seq
        self.last_seq = last_seq
        self.size = size

    @property
    def epochs(self) -> int:
        return self.last_seq - self.first_seq + 1


class SegmentArchive:
    """Sealed-epoch cold store over one ext4 filesystem."""

    def __init__(
        self,
        fs,
        clock,
        config: ArchiveConfig | None = None,
        telemetry=None,
        on_gc=None,
        on_snapshot=None,
    ) -> None:
        self.fs = fs
        self.clock = clock
        self.config = config or ArchiveConfig()
        #: Called after every GC batch with
        #: ``(deleted_epoch_seqs, deleted_snapshot_seqs, limit)`` — the
        #: chaos oracle audits each delete against the fleet's cursors.
        self.on_gc = on_gc
        #: Called with the new floor seq after every snapshot write.
        self.on_snapshot = on_snapshot
        #: Epoch runs on disk, ordered and contiguous: ``files[i+1]``
        #: starts at ``files[i].last_seq + 1``.
        self._files: list[_EpochFile] = []
        #: snapshot seq -> (file name, byte size)
        self._snapshots: dict[int, tuple[str, int]] = {}
        #: Newest durable snapshot seq (the checkpoint floor), if any.
        self.floor: int | None = None
        #: Last appended epoch seq (buffered writes included).
        self.head = 0
        #: Last epoch seq known durable on disk (fsynced).
        self.durable_head = 0
        self._unsynced = 0
        #: file name -> (size when decoded, {seq: Segment})
        self._cache: dict[str, tuple[int, dict[int, Segment]]] = {}
        self._snap_cache: dict[int, Segment] = {}
        # Plain-attribute probes (summaries read these even when the
        # telemetry registry is a disabled no-op).
        self.gc_segments = 0
        self.gc_bytes = 0
        self.snapshots_written = 0
        self.floor_fallbacks = 0
        if telemetry is None:
            from repro.telemetry.metrics import MetricsRegistry

            telemetry = MetricsRegistry(clock, enabled=False)
        self.telemetry = telemetry
        self._g_bytes = telemetry.gauge("archive.bytes")
        self._g_files = telemetry.gauge("archive.files")
        self._c_gc_segments = telemetry.counter("archive.gc_segments")
        self._c_gc_bytes = telemetry.counter("archive.gc_bytes")
        self._c_snapshots = telemetry.counter("archive.snapshots")
        self._c_fallbacks = telemetry.counter("archive.floor_fallbacks")
        self._t_write = telemetry.histogram("archive.write_ns")

    # -- probes -------------------------------------------------------------

    @property
    def min_seq(self) -> int:
        """First epoch seq still on disk (``head + 1`` when none are)."""
        return self._files[0].first_seq if self._files else self.head + 1

    @property
    def bytes_total(self) -> int:
        return sum(rec.size for rec in self._files) + sum(
            size for _, size in self._snapshots.values()
        )

    @property
    def files_count(self) -> int:
        return len(self._files) + len(self._snapshots)

    def _update_gauges(self) -> None:
        self._g_bytes.set(self.bytes_total)
        self._g_files.set(self.files_count)

    # -- the append path ----------------------------------------------------

    def bootstrap(self, frames, term: int = 1) -> None:
        """Write the seq-0 floor: the pristine database before any epoch."""
        self.write_snapshot(0, term, frames)

    def append(self, segment: Segment) -> None:
        """Persist one sealed epoch; buffered, fsynced per ``sync_every``."""
        if segment.seq != self.head + 1:
            raise ValueError(
                f"archive append out of order: got seq {segment.seq}, "
                f"head is {self.head}"
            )
        start_ns = self.clock.now_ns
        blob = encode_segment(segment)
        rec = self._files[-1] if self._files else None
        if rec is None or rec.epochs >= self.config.epochs_per_file:
            if self._unsynced:
                self.sync()  # the finished run goes durable before rolling
            name = _epoch_name(segment.seq)
            self.fs.create(name)
            rec = _EpochFile(name, segment.seq, segment.seq - 1, 0)
            self._files.append(rec)
        handle = self.fs.open(rec.name)
        handle.write(rec.size, blob)
        rec.size += len(blob)
        rec.last_seq = segment.seq
        self.head = segment.seq
        self._unsynced += 1
        if self._unsynced >= self.config.sync_every:
            self.sync()
        self._t_write.observe(int(self.clock.now_ns - start_ns))
        self._update_gauges()

    def sync(self) -> None:
        """fsync buffered epochs; advances ``durable_head`` to ``head``."""
        if self._unsynced and self._files:
            # A full fsync (not fdatasync): the inode size must be
            # journaled, or a remount would forget the appended tail.
            self.fs.open(self._files[-1].name).fsync()
        self._unsynced = 0
        self.durable_head = self.head

    # -- snapshots (the checkpoint floor) -----------------------------------

    def write_snapshot(self, seq: int, term: int, frames) -> None:
        """Write a full-state snapshot at ``seq`` and make it the floor."""
        blob = encode_segment(
            Segment(seq=seq, term=term, txns=0, frames=tuple(frames), flags=FLAG_SNAPSHOT)
        )
        name = _snap_name(seq)
        if self.fs.exists(name):
            self.fs.unlink(name)  # re-promotion at the same watermark
        handle = self.fs.create(name)
        handle.write(0, blob)
        handle.fsync()  # durable before it may retire its predecessor
        self._snapshots[seq] = (name, len(blob))
        self._snap_cache.pop(seq, None)
        self.floor = max(self._snapshots)
        self.snapshots_written += 1
        self._c_snapshots.inc()
        self._update_gauges()
        if self.on_snapshot is not None:
            self.on_snapshot(seq)

    def floor_segment(self) -> Segment | None:
        """Decode the floor snapshot (None when there is no floor)."""
        if self.floor is None:
            return None
        return self._snapshot_segment(self.floor)

    def _snapshot_segment(self, seq: int) -> Segment | None:
        cached = self._snap_cache.get(seq)
        if cached is not None:
            return cached
        name, size = self._snapshots[seq]
        report = decode_stream(self.fs.open(name).read(0, size))
        if not report.clean or len(report.segments) != 1:
            return None
        self._snap_cache[seq] = report.segments[0]
        return report.segments[0]

    def maybe_advance_floor(self, term: int) -> bool:
        """Fold a new floor once ``snapshot_every`` epochs are durable."""
        if self.floor is None or self.durable_head - self.floor < self.config.snapshot_every:
            return False
        if self.min_seq > self.floor + 1:
            return False  # chain to the floor is broken; cannot fold
        frames = self._fold(self.floor, self.durable_head)
        if frames is None:
            return False
        self.write_snapshot(self.durable_head, term, frames)
        return True

    def _fold(self, floor_seq: int, target_seq: int):
        """Fold floor page images + archived epoch diffs up to target."""
        base = self._snapshot_segment(floor_seq) if floor_seq in self._snapshots else None
        if base is None and floor_seq != 0:
            return None
        page_size = self.fs.page_size
        state: dict[int, bytes] = (
            {frame.page_no: bytes(frame.payload) for frame in base.frames}
            if base is not None
            else {}
        )
        for seq in range(floor_seq + 1, target_seq + 1):
            segment = self.segment_at(seq)
            if segment is None:
                return None
            for frame in segment.frames:
                if frame.page_no == PSEUDO_PAGE:
                    continue  # watermark bookkeeping, not database state
                prior = state.get(frame.page_no, bytes(page_size))
                state[frame.page_no] = frame.apply_to(prior)
        return tuple(
            NvFrame(page_no, 0, state[page_no], 0, commit=False)
            for page_no in sorted(state)
        )

    # -- reads --------------------------------------------------------------

    def segment_at(self, seq: int) -> Segment | None:
        """Decode one archived epoch (None when trimmed or never written)."""
        rec = self._file_for(seq)
        if rec is None:
            return None
        cached = self._cache.get(rec.name)
        if cached is None or cached[0] != rec.size:
            report = decode_stream(self.fs.open(rec.name).read(0, rec.size))
            cached = (rec.size, {s.seq: s for s in report.segments})
            self._cache[rec.name] = cached
        return cached[1].get(seq)

    def _file_for(self, seq: int) -> _EpochFile | None:
        for rec in self._files:
            if rec.first_seq <= seq <= rec.last_seq:
                return rec
        return None

    # -- GC -----------------------------------------------------------------

    def gc(self, min_live_cursor: int, limit_override: int | None = None) -> int:
        """Trim files strictly behind ``min(min_live_cursor, floor)``.

        Only whole epoch files whose entire run is at or below the limit
        are unlinked — a partially-needed run stays.  Snapshots strictly
        below the limit are retired, except the floor itself.
        ``limit_override`` exists for sabotage self-tests (a planted
        GC-past-cursor bug) and must never be used by production callers.
        """
        if limit_override is not None:
            limit = limit_override
        else:
            if self.floor is None:
                return 0
            limit = min(min_live_cursor, self.floor)
        deleted: list[int] = []
        freed = 0
        while self._files and self._files[0].last_seq <= limit:
            rec = self._files.pop(0)
            self.fs.unlink(rec.name)
            self._cache.pop(rec.name, None)
            deleted.extend(range(rec.first_seq, rec.last_seq + 1))
            freed += rec.size
        snaps_deleted: list[int] = []
        for seq in sorted(self._snapshots):
            if seq < limit and seq != self.floor:
                name, size = self._snapshots.pop(seq)
                self.fs.unlink(name)
                self._snap_cache.pop(seq, None)
                snaps_deleted.append(seq)
                freed += size
        if deleted or snaps_deleted:
            # Journal the unlinks now: a power cut lands before or after
            # the whole batch, never on a half-freed directory.
            self.fs.sync_all()
            self.gc_segments += len(deleted)
            self.gc_bytes += freed
            self._c_gc_segments.inc(len(deleted))
            self._c_gc_bytes.inc(freed)
            self._update_gauges()
            if self.on_gc is not None:
                self.on_gc(tuple(deleted), tuple(snaps_deleted), limit)
        return len(deleted)

    # -- crash / promotion choreography -------------------------------------

    def power_fail(self, land_probability: float = 0.5) -> None:
        """Cut power to the cold store (OS cache lost, device gambles)."""
        self.fs.power_fail(land_probability)

    def recover(self) -> None:
        """Remount and salvage: longest valid prefix, torn tail truncated.

        Snapshot files that fail to decode (a power cut mid-snapshot
        write) are dropped; the floor falls back to the previous durable
        snapshot.  Epoch files are validated in order — the first torn,
        corrupt, or discontiguous point ends the salvaged run and every
        later file is discarded.
        """
        self.fs.mount()
        names = self.fs.list_names()
        self._snapshots = {}
        self._snap_cache = {}
        self._cache = {}
        for name in names:
            if not name.startswith(_SNAP_PREFIX):
                continue
            handle = self.fs.open(name)
            report = decode_stream(handle.read(0, handle.size))
            seg = report.segments[0] if report.segments else None
            if (
                report.clean
                and len(report.segments) == 1
                and seg.snapshot
                and seg.seq == _name_seq(name, _SNAP_PREFIX)
            ):
                self._snapshots[seg.seq] = (name, handle.size)
            else:
                self.fs.unlink(name)
        self.floor = max(self._snapshots) if self._snapshots else None

        recs: list[_EpochFile] = []
        torn = False
        expected: int | None = None
        for name in sorted(n for n in names if n.startswith(_EPOCH_PREFIX)):
            if torn:
                self.fs.unlink(name)
                continue
            name_seq = _name_seq(name, _EPOCH_PREFIX)
            if expected is not None and name_seq != expected:
                torn = True
                self.fs.unlink(name)
                continue
            handle = self.fs.open(name)
            report = decode_stream(handle.read(0, handle.size))
            kept: list[Segment] = []
            offset = 0
            seq_expect = name_seq
            for seg in report.segments:
                if seg.snapshot or seg.seq != seq_expect:
                    break
                kept.append(seg)
                offset += len(encode_segment(seg))
                seq_expect += 1
            if not report.clean or len(kept) < len(report.segments):
                torn = True  # this file ends the salvaged run
            if not kept:
                self.fs.unlink(name)
                torn = True
                continue
            if offset < handle.size:
                handle.truncate(offset)
                handle.fsync()
            recs.append(_EpochFile(name, kept[0].seq, kept[-1].seq, offset))
            expected = seq_expect
        self._files = recs
        self.head = recs[-1].last_seq if recs else (self.floor or 0)
        self.durable_head = self.head
        self._unsynced = 0
        self.fs.sync_all()
        self._update_gauges()

    def truncate_above(self, seq: int) -> None:
        """Discard every epoch and snapshot above ``seq`` (term fencing).

        Promotion calls this with the election watermark: epochs past it
        were durable only on the dead primary and must never reseed
        anyone.
        """
        keep: list[_EpochFile] = []
        for rec in self._files:
            if rec.last_seq <= seq:
                keep.append(rec)
                continue
            self._cache.pop(rec.name, None)
            if rec.first_seq > seq:
                self.fs.unlink(rec.name)
                continue
            handle = self.fs.open(rec.name)
            report = decode_stream(handle.read(0, rec.size))
            offset = 0
            last = rec.first_seq - 1
            for seg in report.segments:
                if seg.seq > seq:
                    break
                offset += len(encode_segment(seg))
                last = seg.seq
            if offset == 0:
                self.fs.unlink(rec.name)
                continue
            handle.truncate(offset)
            handle.fsync()
            rec.size = offset
            rec.last_seq = last
            keep.append(rec)
        self._files = keep
        self.head = keep[-1].last_seq if keep else min(self.head, seq)
        for snap_seq in [s for s in self._snapshots if s > seq]:
            name, _ = self._snapshots.pop(snap_seq)
            self.fs.unlink(name)
            self._snap_cache.pop(snap_seq, None)
        self.floor = max(self._snapshots) if self._snapshots else None
        self.fs.sync_all()
        self.durable_head = self.head
        self._unsynced = 0
        self._update_gauges()

    def ensure_floor(self, seq: int, term: int, frames_fn) -> bool:
        """Guarantee a reseed chain ending at ``seq`` exists on disk.

        Normally the chain survives promotion intact (floor snapshot +
        contiguous epochs through the watermark) and this is a no-op.
        When the crash tore it — epochs above the salvaged prefix lost,
        or the floor itself torn — a fallback snapshot at ``seq`` is
        written from ``frames_fn()`` (the promoted node's live pages)
        and counted in ``floor_fallbacks``.
        """
        if self.head < seq:
            # Epochs below the watermark are gone; nothing on disk can
            # connect to it.  Resume the epoch log at the watermark.
            for rec in self._files:
                self.fs.unlink(rec.name)
                self._cache.pop(rec.name, None)
            self._files = []
            self.head = self.durable_head = seq
            self._write_fallback(seq, term, frames_fn)
            return True
        chain_ok = (
            self.floor is not None
            and self.floor <= seq
            and (self.floor == seq or self.min_seq <= self.floor + 1)
        )
        if chain_ok:
            return False
        self._write_fallback(seq, term, frames_fn)
        return True

    def _write_fallback(self, seq: int, term: int, frames_fn) -> None:
        self.write_snapshot(seq, term, tuple(frames_fn()))
        self.floor_fallbacks += 1
        self._c_fallbacks.inc()
