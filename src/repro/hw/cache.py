"""Write-back CPU cache model at cache-line granularity.

Only NVRAM addresses are simulated through the cache: the interesting
question for NVWAL is *which NVRAM bytes are durable when*, and the cache is
the first volatile tier those bytes pass through.  DRAM-resident structures
(B-tree pages, the SQLite page cache) are ordinary Python objects; their
access cost is charged by the CPU cost model instead.

The cache is modelled as an overlay: a dirty line holds the current
(volatile) contents of its address range; loads fall back to the durable
device contents for lines that are absent or clean.  ``dccmvac`` snapshots a
dirty line into the flush pipeline and marks it clean — a store issued after
the flush re-dirties the line and is *not* covered by the earlier flush,
exactly the hazard that forces Algorithm 1's ``dmb``/flush/``dmb`` dance
around the commit mark.
"""

from __future__ import annotations

from repro.config import CacheConfig
from repro.errors import MediaError
from repro.hw.memory import NvramDevice


class CacheHierarchy:
    """The (volatile) L1/L2 overlay in front of the NVRAM device."""

    def __init__(self, config: CacheConfig, nvram: NvramDevice) -> None:
        self.config = config
        self.nvram = nvram
        self.line_size = config.line_size
        # line base address -> current line contents (bytearray)
        self._lines: dict[int, bytearray] = {}
        # line base addresses whose overlay contents differ from what has
        # been handed to the flush pipeline / device; dict used as an
        # insertion-ordered set so eviction can pick the oldest dirty line
        self._dirty: dict[int, None] = {}

    # -- geometry -----------------------------------------------------------

    def line_base(self, addr: int) -> int:
        """Base address of the cache line containing ``addr``."""
        return addr - (addr % self.line_size)

    def lines_covering(self, addr: int, length: int) -> list[int]:
        """Base addresses of all lines overlapping [addr, addr+length)."""
        if length <= 0:
            return []
        first = self.line_base(addr)
        last = self.line_base(addr + length - 1)
        return list(range(first, last + self.line_size, self.line_size))

    # -- data path -----------------------------------------------------------

    def _fill(self, base: int) -> bytearray:
        """Return the overlay line at ``base``, filling from NVRAM on miss."""
        line = self._lines.get(base)
        if line is None:
            line = bytearray(self.nvram.read(base, self.line_size))
            self._lines[base] = line
        return line

    def store(self, addr: int, data: bytes) -> None:
        """Write ``data`` at ``addr`` into the cache (volatile).

        The whole range is handled in one pass: lines fully covered by the
        store are replaced outright (no device fill needed — their previous
        contents are overwritten anyway), and only the partial head/tail
        lines fall back to the fill-then-patch path.  Dirty-age order is the
        same as the per-line loop's: every touched line becomes the
        youngest, first line first.
        """
        length = len(data)
        self.nvram.check_range(addr, length)
        if length == 0:
            return
        line_size = self.line_size
        lines = self._lines
        dirty = self._dirty
        view = memoryview(data)
        offset = 0
        base = addr - (addr % line_size)
        in_line = addr - base
        while offset < length:
            chunk = line_size - in_line
            if chunk > length - offset:
                chunk = length - offset
            if chunk == line_size:
                # Full-line overwrite: skip the device fill entirely.
                lines[base] = bytearray(view[offset : offset + line_size])
            else:
                line = lines.get(base)
                if line is None:
                    try:
                        line = bytearray(self.nvram.read(base, line_size))
                    except MediaError:
                        # Write-allocate on a line holding a poisoned unit:
                        # the unreadable bytes are garbage either way, and
                        # the eventual full-line write-back replaces the
                        # unit's codeword, clearing the poison.
                        line = bytearray(line_size)
                    lines[base] = line
                line[in_line : in_line + chunk] = view[offset : offset + chunk]
            dirty.pop(base, None)
            dirty[base] = None  # (re)insert as the youngest dirty line
            offset += chunk
            base += line_size
            in_line = 0

    def load(self, addr: int, length: int) -> bytes:
        """Read the *volatile view*: cache contents where present, durable
        device contents otherwise.

        Implemented as one bulk device read overlaid with whichever cached
        lines intersect the range — equivalent to the per-line walk, but the
        common cases (nothing cached, or a few cached lines over a large
        range) cost one C-level slice plus a handful of patches.
        """
        self.nvram.check_range(addr, length)
        if length <= 0:
            return b""
        out = bytearray(self.nvram.read(addr, length))
        lines = self._lines
        if lines:
            line_size = self.line_size
            first = addr - (addr % line_size)
            end = addr + length
            span = (end - 1) - ((end - 1) % line_size) + line_size - first
            if span // line_size <= len(lines):
                bases = range(first, first + span, line_size)
            else:
                bases = sorted(b for b in lines if first <= b < first + span)
            for base in bases:
                line = lines.get(base)
                if line is None:
                    continue
                lo = base if base > addr else addr
                hi = base + line_size if base + line_size < end else end
                out[lo - addr : hi - addr] = line[lo - base : hi - base]
        return bytes(out)

    # -- flush support --------------------------------------------------------

    def is_dirty(self, base: int) -> bool:
        """Whether the line at ``base`` holds un-flushed stores."""
        return base in self._dirty

    def clean_line(self, base: int) -> bytes | None:
        """Snapshot the line at ``base`` for the flush pipeline.

        Marks the line clean and returns its contents, or ``None`` if the
        line was not dirty (flushing a clean line is a no-op at the data
        level, though the instruction still costs time).
        """
        if base not in self._dirty:
            return None
        self._dirty.pop(base)
        return bytes(self._lines[base])

    def dirty_lines(self) -> dict[int, bytes]:
        """Snapshot of all dirty lines (used by the crash controller)."""
        return {base: bytes(self._lines[base]) for base in self._dirty}

    def evict_oldest_dirty(self) -> tuple[int, bytes] | None:
        """Write-back eviction: remove and return the oldest dirty line.

        Models capacity pressure in L1/L2: lines dirtied long ago migrate
        toward memory on their own, which is what lets lazy synchronization
        mask most of its flush latency behind memcpy (Section 5.1).
        """
        if not self._dirty:
            return None
        base = next(iter(self._dirty))
        self._dirty.pop(base)
        return base, bytes(self._lines[base])

    def drop_all(self) -> None:
        """Discard the entire overlay — what a power failure does."""
        self._lines.clear()
        self._dirty.clear()

    def dirty_line_count(self) -> int:
        """Number of currently dirty lines."""
        return len(self._dirty)
