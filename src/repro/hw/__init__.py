"""Simulated hardware substrate.

This package models the pieces of the Tuna / Nexus 5 platforms that NVWAL's
correctness and performance depend on: a nanosecond clock, a write-back CPU
cache with a pipelined non-blocking flush unit, byte-addressable NVRAM with
8-byte atomic persists, memory / persist barriers, and power-failure
semantics that keep exactly the durable bytes (plus a seeded-random subset
of in-flight ones).
"""

from repro.hw.cache import CacheHierarchy
from repro.hw.clock import SimClock
from repro.hw.cpu import Cpu
from repro.hw.crash import CrashController
from repro.hw.memory import NvramDevice
from repro.hw.stats import Stats, TimeBucket

__all__ = [
    "CacheHierarchy",
    "SimClock",
    "Cpu",
    "CrashController",
    "NvramDevice",
    "Stats",
    "TimeBucket",
]
