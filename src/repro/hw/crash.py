"""Power-failure semantics and crash injection.

The paper could not run physical power-off tests (Section 4.3: the persist
barrier hardware does not exist yet), so it argues recovery correctness case
by case.  We can do better in simulation: a crash keeps the durable NVRAM
bytes exactly, and every *volatile* dirty 8-byte unit — whether still in the
CPU cache or queued in the memory subsystem — independently lands on the
device with a seeded-random probability.  That models cache evictions,
memory-controller drains, and torn cache lines, and it is adversarial enough
to break any implementation that omits a required flush or barrier while
remaining deterministic per seed.

Crash *injection* works through a hook on the CPU: every primitive operation
(store, memcpy, dccmvac, dmb, persist_barrier) counts as one step, and the
controller can be armed to cut power at step N.  Sweeping N over a whole
transaction exercises every intermediate state of Algorithm 1.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.config import ATOMIC_UNIT
from repro.errors import PowerFailure
from repro.hw.cpu import Cpu
from repro.hw.memory import NvramDevice


class CrashController:
    """Arms, fires, and applies power failures on a simulated system."""

    def __init__(
        self,
        cpu: Cpu,
        nvram: NvramDevice,
        land_probability: float = 0.5,
        seed: int | None = None,
    ) -> None:
        self.cpu = cpu
        self.nvram = nvram
        self.land_probability = land_probability
        self.rng = random.Random(seed)
        self._armed_at: int | None = None
        self._op_count = 0
        self._op_filter: Callable[[str], bool] | None = None
        #: True between a power failure and the next :meth:`power_on`.
        self.powered_off = False

    # ------------------------------------------------------------------
    # arming
    # ------------------------------------------------------------------

    def arm(
        self,
        after_ops: int,
        op_filter: Callable[[str], bool] | None = None,
    ) -> None:
        """Cut power after ``after_ops`` further matching CPU operations.

        ``op_filter`` restricts which primitive ops count (e.g. only
        ``dccmvac``); by default every op counts.
        """
        self._armed_at = after_ops
        self._op_count = 0
        self._op_filter = op_filter
        self.cpu.crash_hook = self._on_op

    def disarm(self) -> None:
        """Cancel a pending injection."""
        self._armed_at = None
        self.cpu.crash_hook = None

    def _on_op(self, op: str) -> None:
        if self._armed_at is None:
            return
        if self._op_filter is not None and not self._op_filter(op):
            return
        self._op_count += 1
        if self._op_count >= self._armed_at:
            self.disarm()
            self.power_fail()

    # ------------------------------------------------------------------
    # the failure itself
    # ------------------------------------------------------------------

    def power_fail(self) -> None:
        """Cut power *now*: land a random subset of volatile units, discard
        the rest, and raise :class:`PowerFailure`."""
        self.apply_power_loss()
        raise PowerFailure("simulated power failure")

    def power_on(self) -> None:
        """Restore power after a failure (part of reboot choreography)."""
        self.powered_off = False

    def apply_power_loss(self) -> None:
        """The physics of the failure, without the control-flow unwind.

        Each volatile 8-byte unit lands independently with
        ``land_probability``; durable bytes are untouched.  Afterwards all
        volatile tiers are empty, as they would be after a reboot.

        Cutting power on a machine that is already off is a no-op: a dead
        machine has no volatile state left to land, and re-drawing the
        landing lottery would perturb the seeded RNG stream.  The flag is
        cleared by :meth:`power_on`.
        """
        if self.powered_off:
            return
        self.powered_off = True
        dirty_lines, pending = self.cpu.volatile_state()
        # Memory-subsystem entries are "closer" to the device, but without a
        # persist barrier nothing guarantees they landed: same coin flip.
        for entry in pending:
            self._land_partially(entry.addr, entry.data)
        for base, data in dirty_lines.items():
            self._land_partially(base, data)
        self.cpu.drop_volatile()

    def _land_partially(self, addr: int, data: bytes) -> None:
        """Persist a random subset of ``data`` in 8-byte atomic units."""
        for offset in range(0, len(data), ATOMIC_UNIT):
            if self.rng.random() < self.land_probability:
                chunk = data[offset : offset + ATOMIC_UNIT]
                self.nvram.persist(addr + offset, chunk)

    # ------------------------------------------------------------------
    # convenience for tests
    # ------------------------------------------------------------------

    def count_ops(self, fn: Callable[[], None], op_filter=None) -> int:
        """Run ``fn`` while counting matching CPU ops (without crashing).

        Tests use this to learn how many injection points a code path has,
        then sweep ``arm(k)`` for k in 1..N.
        """
        count = 0

        def hook(op: str) -> None:
            nonlocal count
            if op_filter is None or op_filter(op):
                count += 1

        previous = self.cpu.crash_hook
        self.cpu.crash_hook = hook
        try:
            fn()
        finally:
            self.cpu.crash_hook = previous
        return count
