"""Simulated CPU: stores, loads, memcpy, flush instructions, and barriers.

This module is the moral equivalent of the paper's Algorithms 1 and 2 seen
from below: it provides exactly the primitives NVWAL composes —

* ``store`` / ``memcpy``: volatile writes into the cache overlay;
* ``cache_line_flush(start, end)``: the Algorithm 2 system call that issues
  one non-blocking ``dccmvac`` per covered cache line;
* ``dmb()``: blocks until previously issued flushes complete (reach the
  memory subsystem);
* ``persist_barrier()``: drains the memory-subsystem queue into durable
  NVRAM (the paper emulates this with a 1 usec delay);
* ``compute(ns)``: charges database CPU work on the same clock.

Timing model of the flush unit: ``dccmvac`` is non-blocking, so a flush
issued while the pipeline is busy completes ``write_latency /
pipeline_depth`` after its predecessor, while a flush issued to an idle
pipeline completes a full ``write_latency`` later.  ``dmb`` waits for the
last completion and therefore drains the pipeline — which is precisely why
eager synchronization (flush + barrier per log entry, Figure 4b) is slower
than lazy synchronization (batched flushes, one barrier, Figure 4c).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.config import SystemConfig
from repro.hw import stats as statnames
from repro.hw.cache import CacheHierarchy
from repro.hw.clock import SimClock
from repro.hw.memory import NvramDevice
from repro.hw.stats import Stats, TimeBucket

#: Raw Counter key for the dccmvac time bucket, hoisted out of the batched
#: flush loop (enum attribute access is measurable at this call volume).
_DCCMVAC_KEY = TimeBucket.DCCMVAC.value


@dataclass
class PendingPersist:
    """A cache line travelling through the memory subsystem.

    It has left the CPU cache (``dccmvac`` issued) but is not durable until
    a persist barrier drains it — or a crash happens to land it.
    """

    addr: int
    data: bytes
    completion_ns: float


class Cpu:
    """One simulated core plus its cache and flush pipeline."""

    def __init__(
        self,
        config: SystemConfig,
        clock: SimClock,
        cache: CacheHierarchy,
        nvram: NvramDevice,
        stats: Stats,
    ) -> None:
        self.config = config
        self.clock = clock
        self.cache = cache
        self.nvram = nvram
        self.stats = stats
        #: Lines in the memory subsystem awaiting a persist barrier.
        self.pending: list[PendingPersist] = []
        #: Completion time of the most recently issued flush.
        self._pipeline_last_completion = 0.0
        #: Largest completion time over ``pending`` — tracked incrementally
        #: so the barriers do not rescan the whole queue (it only grows
        #: until a persist barrier clears it, so the max never decreases).
        self._pending_max_completion = 0.0
        #: Optional crash hook, set by the CrashController; called once per
        #: primitive operation so tests can fire a power failure at any step.
        self.crash_hook = None

    # ------------------------------------------------------------------
    # internal helpers
    # ------------------------------------------------------------------

    def _tick(self, op: str) -> None:
        if self.crash_hook is not None:
            self.crash_hook(op)

    # ------------------------------------------------------------------
    # volatile data path
    # ------------------------------------------------------------------

    def store(self, addr: int, data: bytes) -> None:
        """Plain store: volatile write into the cache, minimal cost."""
        self._tick("store")
        self.cache.store(addr, data)
        self.clock.advance(self.config.cache.memcpy_ns_per_byte * len(data))
        self.stats.add_time(
            TimeBucket.CPU, self.config.cache.memcpy_ns_per_byte * len(data)
        )

    def memcpy(self, dst: int, data: bytes) -> None:
        """Copy ``data`` to NVRAM address ``dst`` through the cache.

        Charged at memcpy cost; the bytes are *not* durable afterwards —
        they sit in the cache until flushed and barriered (or evicted, which
        the crash controller models probabilistically).
        """
        self._tick("memcpy")
        cost = (
            self.config.cache.memcpy_base_ns
            + self.config.cache.memcpy_ns_per_byte * len(data)
        )
        self.cache.store(dst, data)
        self.clock.advance(cost)
        self.stats.add_time(TimeBucket.MEMCPY, cost)
        self.stats.count("memcpy_bytes", len(data))
        self._evict_excess()

    def _evict_excess(self) -> None:
        """Capacity write-back: lines dirtied long ago migrate to the
        memory subsystem while the CPU keeps copying — their write latency
        hides under the memcpy, so a later dccmvac for them is nearly free
        (lazy synchronization's masking effect, Section 5.1)."""
        cache = self.cache
        excess = cache.dirty_line_count() - self.config.cache.eviction_threshold_lines
        if excess <= 0:
            return
        now = self.clock.now_ns
        pending = self.pending
        for _ in range(excess):
            evicted = cache.evict_oldest_dirty()
            if evicted is None:
                break
            addr, data = evicted
            pending.append(PendingPersist(addr, data, now))
        if now > self._pending_max_completion:
            self._pending_max_completion = now
        self.stats.count("cache_evictions", excess)

    def load(self, addr: int, length: int) -> bytes:
        """Read the volatile view of NVRAM (cache overlay over device).

        Charged per cache line actually touched: a 63-byte read that spans
        two lines costs two line reads (``length // line_size`` would
        undercharge any range that straddles a line boundary).
        """
        line_size = self.config.cache.line_size
        if length <= 0:
            lines = 0
        else:
            first = addr - (addr % line_size)
            last = (addr + length - 1) - ((addr + length - 1) % line_size)
            lines = (last - first) // line_size + 1
        cost = self.config.nvram.read_latency_ns * lines
        self.clock.advance(cost)
        self.stats.add_time(TimeBucket.CPU, cost)
        return self.cache.load(addr, length)

    def load_free(self, addr: int, length: int) -> bytes:
        """Volatile read without a time charge (for assertions in tests and
        for recovery-time bulk scans whose cost is charged separately)."""
        return self.cache.load(addr, length)

    # ------------------------------------------------------------------
    # flush instructions
    # ------------------------------------------------------------------

    def dccmvac(self, line_base: int) -> None:
        """Issue one non-blocking cache-line flush (clean to PoC by MVA).

        Flushing a *clean* line (e.g. one that capacity eviction already
        wrote back during memcpy) costs only the instruction.  Flushing a
        *dirty* line additionally stalls for one pipeline interval: the
        flush unit cannot inject lines faster than the NVRAM write
        bandwidth.  This asymmetry is what makes lazy synchronization's
        flushes "masked by the overhead of memcpy()" while eager
        synchronization, which always flushes cache-hot lines, pays full
        price (Section 5.1, Figure 5).
        """
        self._tick("dccmvac")
        issue = self.config.cache.flush_issue_ns
        self.clock.advance(issue)
        self.stats.add_time(TimeBucket.DCCMVAC, issue)
        self.stats.count(statnames.FLUSHES)

        data = self.cache.clean_line(line_base)
        if data is None:
            # Flushing a clean line costs the instruction but moves no data.
            return
        latency = self.config.nvram.write_latency_ns
        interval = latency / self.config.cache.pipeline_depth
        self.clock.advance(interval)  # injection backpressure
        self.stats.add_time(TimeBucket.DCCMVAC, interval)
        now = self.clock.now_ns
        if self._pipeline_last_completion <= now:
            completion = now + latency
        else:
            completion = self._pipeline_last_completion + interval
        self._pipeline_last_completion = completion
        if completion > self._pending_max_completion:
            self._pending_max_completion = completion
        self.pending.append(PendingPersist(line_base, data, completion))

    def cache_line_flush(self, start: int, end: int) -> None:
        """The Algorithm 2 system call: flush every line in [start, end).

        ``dccmvac`` needs privileged register access on ARM, so each call
        crosses the kernel boundary once, no matter how many lines it
        covers — which is why lazy synchronization, batching many lines per
        call, also saves mode switches.
        """
        self._tick("cache_line_flush")
        self.clock.advance(self.config.cache.syscall_ns)
        self.stats.add_time(TimeBucket.SYSCALL, self.config.cache.syscall_ns)
        self.stats.count(statnames.FLUSH_CALLS)
        length = end - start
        if length <= 0:
            return
        if self.crash_hook is not None:
            # Crash injection counts every dccmvac as one step; keep the
            # per-instruction path so armed failures land mid-range.
            for base in self.cache.lines_covering(start, length):
                self.dccmvac(base)
            return
        self._dccmvac_batch(start, length)

    def _dccmvac_batch(self, start: int, length: int) -> None:
        """Issue ``dccmvac`` for every line covering [start, start+length)
        in one pass.

        Charges exactly the same sequence of clock and stats additions as
        the per-line :meth:`dccmvac` loop (same floating-point operations in
        the same order, so simulated time is bit-identical), but without the
        per-line method dispatch, Counter updates, and clock calls.
        """
        cache = self.cache
        lines = cache._lines
        dirty = cache._dirty
        pending = self.pending
        cache_cfg = self.config.cache
        line_size = cache_cfg.line_size
        issue = cache_cfg.flush_issue_ns
        latency = self.config.nvram.write_latency_ns
        interval = latency / cache_cfg.pipeline_depth
        clock = self.clock
        now = clock.now_ns
        dccmvac_ns = self.stats.time_ns[_DCCMVAC_KEY]
        last = self._pipeline_last_completion
        pending_max = self._pending_max_completion

        first = start - (start % line_size)
        stop = start + length  # covered bases are [first, stop)
        count = 0
        for base in range(first, stop, line_size):
            count += 1
            now += issue
            dccmvac_ns += issue
            if base not in dirty:
                continue
            del dirty[base]
            data = bytes(lines[base])
            now += interval
            dccmvac_ns += interval
            if last <= now:
                completion = now + latency
            else:
                completion = last + interval
            last = completion
            if completion > pending_max:
                pending_max = completion
            pending.append(PendingPersist(base, data, completion))

        clock.now_ns = now
        self.stats.time_ns[_DCCMVAC_KEY] = dccmvac_ns
        self.stats.count(statnames.FLUSHES, count)
        self._pipeline_last_completion = last
        self._pending_max_completion = pending_max

    # ------------------------------------------------------------------
    # barriers
    # ------------------------------------------------------------------

    def dmb(self) -> None:
        """Data memory barrier: wait for issued flushes to complete.

        After ``dmb`` returns, previously flushed lines have reached the
        memory subsystem (tier 2) — they are still *not* durable until a
        persist barrier drains them.
        """
        self._tick("dmb")
        start = self.clock.now_ns
        self.clock.advance(self.config.cache.dmb_ns)
        if self.pending:
            self.clock.advance_to(self._pending_max_completion)
        self.stats.add_time(TimeBucket.DMB, self.clock.now_ns - start)
        self.stats.count(statnames.DMBS)

    def persist_barrier(self) -> None:
        """Drain the memory-subsystem queue into durable NVRAM.

        The paper emulates this instruction as a 1 usec delay (Section 5.3);
        we additionally wait for any flush still in flight, then commit the
        queued lines to the device.
        """
        self._tick("persist_barrier")
        start = self.clock.now_ns
        if self.pending:
            self.clock.advance_to(self._pending_max_completion)
        self.clock.advance(self.config.cache.persist_barrier_ns)
        self.stats.add_time(TimeBucket.PERSIST_BARRIER, self.clock.now_ns - start)
        self.stats.count(statnames.PERSIST_BARRIERS)
        if self.pending:
            bytes_written = self.nvram.persist_lines(self.pending)
            self.stats.count(statnames.NVRAM_LINES_PERSISTED, len(self.pending))
            self.stats.count(statnames.NVRAM_BYTES_WRITTEN, bytes_written)
            self.pending.clear()
            self._pending_max_completion = 0.0

    # ------------------------------------------------------------------
    # CPU work
    # ------------------------------------------------------------------

    def compute(self, ns: float, bucket: TimeBucket = TimeBucket.CPU) -> None:
        """Charge ``ns`` nanoseconds of computation to the clock."""
        if ns <= 0:
            return
        self.clock.advance(ns)
        self.stats.add_time(bucket, ns)

    def syscall_overhead(self) -> None:
        """Charge one kernel-mode switch (for non-flush syscalls)."""
        self.clock.advance(self.config.cache.syscall_ns)
        self.stats.add_time(TimeBucket.SYSCALL, self.config.cache.syscall_ns)

    # ------------------------------------------------------------------
    # crash support
    # ------------------------------------------------------------------

    def volatile_state(self) -> tuple[dict[int, bytes], list[PendingPersist]]:
        """Expose tiers 1 and 2 to the crash controller."""
        return self.cache.dirty_lines(), list(self.pending)

    def drop_volatile(self) -> None:
        """Discard tiers 1 and 2 — the power has gone out."""
        self.cache.drop_all()
        self.pending.clear()
        self._pipeline_last_completion = 0.0
        self._pending_max_completion = 0.0


def make_rng(seed: int | None) -> random.Random:
    """Seeded RNG factory shared by crash machinery and workloads."""
    return random.Random(seed)
