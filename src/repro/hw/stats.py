"""Counters and time-breakdown accounting.

Figure 5 of the paper breaks transaction time into ``memcpy``, ``dccmvac``,
and ``dmb`` buckets; Table 1 counts dccmvac instructions per transaction;
Table 2 counts bytes written to NVRAM.  :class:`Stats` collects all of those
so the experiments can read them back without instrumenting call sites twice.
"""

from __future__ import annotations

import enum
from collections import Counter


class TimeBucket(str, enum.Enum):
    """Where simulated time was spent."""

    MEMCPY = "memcpy"
    DCCMVAC = "dccmvac"
    DMB = "dmb"
    PERSIST_BARRIER = "persist_barrier"
    SYSCALL = "syscall"
    HEAP = "heap"
    CPU = "cpu"
    BLOCK_IO = "block_io"
    OTHER = "other"


class Stats:
    """Accumulates event counts and per-bucket simulated time.

    A :class:`Stats` object supports snapshot/delta arithmetic so a harness
    can measure exactly one transaction::

        before = stats.snapshot()
        ...run transaction...
        delta = stats.delta_since(before)
    """

    def __init__(self) -> None:
        self.counters: Counter[str] = Counter()
        self.time_ns: Counter[str] = Counter()

    # -- recording ---------------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        """Increment the event counter ``name`` by ``n``."""
        self.counters[name] += n

    def add_time(self, bucket: TimeBucket, ns: float) -> None:
        """Charge ``ns`` nanoseconds of simulated time to ``bucket``."""
        # _value_ is a plain attribute; .value would go through the
        # DynamicClassAttribute descriptor on every hot-path call.
        self.time_ns[bucket._value_] += ns

    # -- reading -----------------------------------------------------------

    def get_count(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        return self.counters[name]

    def get_time(self, bucket: TimeBucket) -> float:
        """Total nanoseconds charged to ``bucket``."""
        return self.time_ns[bucket.value]

    def total_time(self) -> float:
        """Total nanoseconds charged across all buckets."""
        return sum(self.time_ns.values())

    # -- snapshots ---------------------------------------------------------

    def snapshot(self) -> "Stats":
        """Return an independent copy of the current state."""
        snap = Stats()
        snap.counters = Counter(self.counters)
        snap.time_ns = Counter(self.time_ns)
        return snap

    def delta_since(self, earlier: "Stats") -> "Stats":
        """Return a new Stats holding ``self - earlier``."""
        delta = Stats()
        delta.counters = Counter(self.counters)
        delta.counters.subtract(earlier.counters)
        delta.time_ns = Counter(self.time_ns)
        delta.time_ns.subtract(earlier.time_ns)
        return delta

    def reset(self) -> None:
        """Zero all counters and time buckets."""
        self.counters.clear()
        self.time_ns.clear()

    def __repr__(self) -> str:
        times = {k: round(v, 1) for k, v in self.time_ns.items() if v}
        counts = {k: v for k, v in self.counters.items() if v}
        return f"Stats(time_ns={times}, counters={counts})"


# Well-known counter names, kept in one place so experiments and call sites
# cannot drift apart.
FLUSHES = "dccmvac_instructions"
FLUSH_CALLS = "cache_line_flush_syscalls"
DMBS = "dmb_instructions"
PERSIST_BARRIERS = "persist_barriers"
NVRAM_BYTES_WRITTEN = "nvram_bytes_written"
NVRAM_LINES_PERSISTED = "nvram_lines_persisted"
BLOCK_READS = "block_reads"
BLOCK_WRITES = "block_writes"
BLOCK_FLUSHES = "block_flushes"
NVMALLOC_CALLS = "nvmalloc_calls"
NVFREE_CALLS = "nvfree_calls"
PRE_MALLOC_CALLS = "nv_pre_malloc_calls"
SET_USED_CALLS = "nv_malloc_set_used_flag_calls"
