"""Byte-addressable NVRAM device model.

The device holds the *durable* bytes: anything here survives a power
failure.  Volatile copies of NVRAM addresses live in the CPU cache overlay
(:mod:`repro.hw.cache`) and in the memory-subsystem flush queue
(:mod:`repro.hw.cpu`); they reach the device only through a persist barrier
or, at a crash, probabilistically (:mod:`repro.hw.crash`).

Writes are atomic at :data:`repro.config.ATOMIC_UNIT` (8-byte) granularity,
matching the paper's assumption that DIMM capacitors guarantee no corruption
of 8 bytes on power failure (Section 4.1).
"""

from __future__ import annotations

from repro.config import NvramConfig
from repro.errors import AddressError


#: Granularity of wear tracking — one counter per 256-byte region.
WEAR_REGION = 256

#: Lazy-materialization chunk for the durable image.  A multiple of
#: :data:`WEAR_REGION` so a worn region is always fully materialized —
#: the media-fault injector indexes ``_data`` anywhere inside a worn
#: region and must never run off the end of the buffer.
_GROW_CHUNK = 1 << 20


class NvramDevice:
    """The emulated NVRAM DIMM: a flat, durable byte array.

    The device also tracks write wear per 256-byte region: NVRAM cells have
    finite endurance, and the paper's related work (NVMalloc [35]) worries
    about allocators concentrating writes.  :meth:`wear_stats` lets
    experiments check whether the WAL's append-mostly pattern spreads wear.
    """

    def __init__(self, config: NvramConfig | None = None) -> None:
        self.config = config or NvramConfig()
        # The durable image is materialized lazily: ``_data`` covers
        # [0, len(_data)) and grows geometrically in _GROW_CHUNK-aligned
        # steps on first write; everything past the end reads as zero
        # (erased NVRAM).  Zeroing the full device up front cost ~30 ms
        # per 64 MB System, which dominated every fresh-system benchmark
        # and crash-harness reboot.
        self._data = bytearray()
        self._wear: dict[int, int] = {}
        # Optional media-fault injector (repro.faults): overlays stuck
        # units and fails poisoned ones on the read path.
        self.fault_injector = None

    def _materialize(self, end: int) -> None:
        """Grow the durable image to cover at least [0, end)."""
        have = len(self._data)
        if end <= have:
            return
        target = -(-end // _GROW_CHUNK) * _GROW_CHUNK
        if target < 2 * have:
            target = 2 * have  # geometric: amortize long sequential fills
        if target > self.size:
            target = self.size
        self._data.extend(bytes(target - have))

    @property
    def size(self) -> int:
        """Device capacity in bytes."""
        return self.config.size

    def check_range(self, addr: int, length: int) -> None:
        """Raise :class:`AddressError` unless [addr, addr+length) is mapped."""
        if addr < 0 or length < 0 or addr + length > self.size:
            raise AddressError(
                f"NVRAM access out of range: addr={addr} len={length} "
                f"size={self.size}"
            )

    def persist(self, addr: int, payload: bytes) -> None:
        """Durably write ``payload`` at ``addr``.

        This is the *device-side* operation: it carries no simulated-time
        cost (the cost was charged when the flush was issued and when the
        barrier waited for it) and no atomicity restriction (atomicity
        matters only for the crash controller, which persists partial data
        in 8-byte units).
        """
        length = len(payload)
        end = addr + length
        if addr < 0 or length < 0 or end > self.config.size:
            self.check_range(addr, length)
        data = self._data
        if end > len(data):
            self._materialize(end)
            data = self._data
        data[addr:end] = payload
        if self.fault_injector is not None:
            self.fault_injector.on_write(addr, length)
        if payload:
            first = addr // WEAR_REGION
            last = (end - 1) // WEAR_REGION
            wear = self._wear
            if first == last:  # common case: one cache line, one region
                wear[first] = wear.get(first, 0) + 1
            else:
                for region in range(first, last + 1):
                    wear[region] = wear.get(region, 0) + 1

    def persist_lines(self, entries) -> int:
        """Durably write many queued lines; returns total bytes written.

        Equivalent to calling :meth:`persist` once per entry — identical
        wear accounting (one increment per entry per covered region) and
        identical fault-injector notifications — without the per-call
        overhead.  ``entries`` is any iterable of objects with ``addr``
        and ``data`` attributes (the persist-barrier drain queue).
        """
        size = self.config.size
        data = self._data
        wear = self._wear
        injector = self.fault_injector
        total = 0
        for entry in entries:
            addr = entry.addr
            payload = entry.data
            length = len(payload)
            end = addr + length
            if addr < 0 or length < 0 or end > size:
                self.check_range(addr, length)
            if end > len(data):
                self._materialize(end)
                data = self._data
            data[addr:end] = payload
            if injector is not None:
                injector.on_write(addr, length)
            if length:
                first = addr // WEAR_REGION
                last = (end - 1) // WEAR_REGION
                if first == last:
                    wear[first] = wear.get(first, 0) + 1
                else:
                    for region in range(first, last + 1):
                        wear[region] = wear.get(region, 0) + 1
            total += length
        return total

    def read(self, addr: int, length: int) -> bytes:
        """Return the durable contents of [addr, addr+length).

        With a fault injector installed, stuck atomic units read back
        their frozen decayed value and poisoned units raise
        :class:`repro.errors.MediaError` instead of returning garbage.
        """
        self.check_range(addr, length)
        end = addr + length
        have = len(self._data)
        if addr >= have:
            data = bytes(length)  # never written: erased NVRAM reads zero
        elif end <= have:
            data = bytes(self._data[addr:end])
        else:
            data = bytes(self._data[addr:have]) + bytes(end - have)
        if self.fault_injector is not None:
            data = self.fault_injector.filter_read(addr, length, data)
        return data

    def durable_image(self) -> bytes:
        """A full copy of the durable state (used by crash tests)."""
        return bytes(self._data) + bytes(self.size - len(self._data))

    def wear_stats(self) -> dict[str, float]:
        """Wear summary: writes per 256-byte region.

        ``max`` is the hottest region's write count, ``mean`` the average
        over regions written at least once, ``regions`` how many regions
        were ever written.  A max/mean ratio near 1 means evenly spread
        wear; a large ratio flags a hot spot (e.g. a header rewritten per
        transaction).
        """
        if not self._wear:
            return {"max": 0, "mean": 0.0, "regions": 0}
        counts = self._wear.values()
        return {
            "max": max(counts),
            "mean": sum(counts) / len(counts),
            "regions": len(counts),
        }

    def hottest_regions(self, n: int = 5) -> list[tuple[int, int]]:
        """The ``n`` most-written regions as (byte address, write count)."""
        ranked = sorted(self._wear.items(), key=lambda kv: -kv[1])[:n]
        return [(region * WEAR_REGION, count) for region, count in ranked]

    def __repr__(self) -> str:
        return f"NvramDevice(size={self.size})"
