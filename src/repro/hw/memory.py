"""Byte-addressable NVRAM device model.

The device holds the *durable* bytes: anything here survives a power
failure.  Volatile copies of NVRAM addresses live in the CPU cache overlay
(:mod:`repro.hw.cache`) and in the memory-subsystem flush queue
(:mod:`repro.hw.cpu`); they reach the device only through a persist barrier
or, at a crash, probabilistically (:mod:`repro.hw.crash`).

Writes are atomic at :data:`repro.config.ATOMIC_UNIT` (8-byte) granularity,
matching the paper's assumption that DIMM capacitors guarantee no corruption
of 8 bytes on power failure (Section 4.1).
"""

from __future__ import annotations

from repro.config import NvramConfig
from repro.errors import AddressError


#: Granularity of wear tracking — one counter per 256-byte region.
WEAR_REGION = 256


class NvramDevice:
    """The emulated NVRAM DIMM: a flat, durable byte array.

    The device also tracks write wear per 256-byte region: NVRAM cells have
    finite endurance, and the paper's related work (NVMalloc [35]) worries
    about allocators concentrating writes.  :meth:`wear_stats` lets
    experiments check whether the WAL's append-mostly pattern spreads wear.
    """

    def __init__(self, config: NvramConfig | None = None) -> None:
        self.config = config or NvramConfig()
        self._data = bytearray(self.config.size)
        self._wear: dict[int, int] = {}
        # Optional media-fault injector (repro.faults): overlays stuck
        # units and fails poisoned ones on the read path.
        self.fault_injector = None

    @property
    def size(self) -> int:
        """Device capacity in bytes."""
        return self.config.size

    def check_range(self, addr: int, length: int) -> None:
        """Raise :class:`AddressError` unless [addr, addr+length) is mapped."""
        if addr < 0 or length < 0 or addr + length > self.size:
            raise AddressError(
                f"NVRAM access out of range: addr={addr} len={length} "
                f"size={self.size}"
            )

    def persist(self, addr: int, payload: bytes) -> None:
        """Durably write ``payload`` at ``addr``.

        This is the *device-side* operation: it carries no simulated-time
        cost (the cost was charged when the flush was issued and when the
        barrier waited for it) and no atomicity restriction (atomicity
        matters only for the crash controller, which persists partial data
        in 8-byte units).
        """
        self.check_range(addr, len(payload))
        self._data[addr : addr + len(payload)] = payload
        if self.fault_injector is not None:
            self.fault_injector.on_write(addr, len(payload))
        if payload:
            first = addr // WEAR_REGION
            last = (addr + len(payload) - 1) // WEAR_REGION
            for region in range(first, last + 1):
                self._wear[region] = self._wear.get(region, 0) + 1

    def read(self, addr: int, length: int) -> bytes:
        """Return the durable contents of [addr, addr+length).

        With a fault injector installed, stuck atomic units read back
        their frozen decayed value and poisoned units raise
        :class:`repro.errors.MediaError` instead of returning garbage.
        """
        self.check_range(addr, length)
        data = bytes(self._data[addr : addr + length])
        if self.fault_injector is not None:
            data = self.fault_injector.filter_read(addr, length, data)
        return data

    def durable_image(self) -> bytes:
        """A full copy of the durable state (used by crash tests)."""
        return bytes(self._data)

    def wear_stats(self) -> dict[str, float]:
        """Wear summary: writes per 256-byte region.

        ``max`` is the hottest region's write count, ``mean`` the average
        over regions written at least once, ``regions`` how many regions
        were ever written.  A max/mean ratio near 1 means evenly spread
        wear; a large ratio flags a hot spot (e.g. a header rewritten per
        transaction).
        """
        if not self._wear:
            return {"max": 0, "mean": 0.0, "regions": 0}
        counts = self._wear.values()
        return {
            "max": max(counts),
            "mean": sum(counts) / len(counts),
            "regions": len(counts),
        }

    def hottest_regions(self, n: int = 5) -> list[tuple[int, int]]:
        """The ``n`` most-written regions as (byte address, write count)."""
        ranked = sorted(self._wear.items(), key=lambda kv: -kv[1])[:n]
        return [(region * WEAR_REGION, count) for region, count in ranked]

    def __repr__(self) -> str:
        return f"NvramDevice(size={self.size})"
