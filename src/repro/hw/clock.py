"""Simulated nanosecond clock.

All latencies in the reproduction are charged against this clock rather than
wall-clock time, which makes every experiment deterministic and lets latency
sweeps reproduce the paper's throughput curves exactly.
"""

from __future__ import annotations


class SimClock:
    """A monotonically advancing nanosecond counter."""

    __slots__ = ("now_ns",)

    def __init__(self) -> None:
        self.now_ns = 0

    def advance(self, ns: float) -> None:
        """Advance the clock by ``ns`` nanoseconds (must be >= 0)."""
        if ns < 0:
            raise ValueError(f"cannot advance clock by negative time: {ns}")
        self.now_ns += ns

    def advance_to(self, deadline_ns: float) -> None:
        """Advance the clock to ``deadline_ns`` if it is in the future.

        Used to model blocking waits (e.g. ``dmb`` waiting for outstanding
        flushes): waiting for a completion that has already happened costs
        nothing.
        """
        if deadline_ns > self.now_ns:
            self.now_ns = deadline_ns

    def elapsed_since(self, start_ns: float) -> float:
        """Nanoseconds elapsed since ``start_ns``."""
        return self.now_ns - start_ns

    def __repr__(self) -> str:
        return f"SimClock(now_ns={self.now_ns})"
