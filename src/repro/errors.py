"""Exception hierarchy for the NVWAL reproduction.

Every error raised by this package derives from :class:`ReproError` so that
callers can catch the whole family with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package.

    Every subclass carries a ``category`` — a coarse, stable error class
    ("sql", "schema", "constraint", "txn", ...) that the differential
    fuzzer compares against real SQLite's error classes.  Two engines
    "agree" on a failing statement when their categories match, even
    though messages and exception types differ.
    """

    category = "internal"


# ---------------------------------------------------------------------------
# Hardware simulation errors
# ---------------------------------------------------------------------------


class HardwareError(ReproError):
    """Base class for simulated-hardware errors."""

    category = "hw"


class AddressError(HardwareError):
    """An access touched an address outside any mapped device region."""


class AlignmentError(HardwareError):
    """An operation violated a required alignment (e.g. 8-byte persist)."""


class PowerFailure(HardwareError):
    """Raised by crash injection to unwind the software stack.

    Catching this exception models the machine losing power: all volatile
    simulated state has already been discarded by the time it propagates.
    """


class MediaError(HardwareError):
    """An NVRAM read hit an uncorrectable (poisoned) media unit.

    Models ECC-uncorrectable cell decay: the device *detects* the failure
    instead of silently returning garbage.  Recovery code treats the
    affected region as unreadable and salvages around it.
    """


# ---------------------------------------------------------------------------
# NVRAM heap errors
# ---------------------------------------------------------------------------


class HeapError(ReproError):
    """Base class for persistent-heap errors."""

    category = "heap"


class OutOfNvram(HeapError):
    """The NVRAM device has no free blocks left."""


class BadHandle(HeapError):
    """An operation referenced an unknown or already-freed allocation."""


class HeapStateError(HeapError):
    """An allocation was used in a state that does not permit the operation
    (e.g. marking a ``free`` block as ``in-use`` without pre-allocation)."""


# ---------------------------------------------------------------------------
# Storage / filesystem errors
# ---------------------------------------------------------------------------


class StorageError(ReproError):
    """Base class for block-device and filesystem errors."""

    category = "storage"


class NoSuchFile(StorageError):
    """Lookup of a file name that does not exist."""


class FileExists(StorageError):
    """Attempt to create a file name that already exists."""


class OutOfSpace(StorageError):
    """The block device has no free blocks left."""


class FsConsistencyError(StorageError):
    """The filesystem detected corrupted on-device metadata."""


class IoError(StorageError):
    """A block-device read or write failed transiently.

    eMMC devices occasionally fail a command and succeed on retry; the
    filesystem and WAL layers absorb these with bounded
    retry-with-backoff, so the error only propagates when the device
    keeps failing past the retry budget.
    """


# ---------------------------------------------------------------------------
# Database errors
# ---------------------------------------------------------------------------


class DatabaseError(ReproError):
    """Base class for database-engine errors."""

    category = "db"


class SqlError(DatabaseError):
    """Syntax or semantic error in a SQL statement."""

    category = "sql"


class TableError(DatabaseError):
    """Unknown table, duplicate table, or schema mismatch."""

    category = "schema"


class TransactionError(DatabaseError):
    """Illegal transaction state transition (e.g. nested writers)."""

    category = "txn"


class KeyNotFound(DatabaseError):
    """A keyed lookup (UPDATE/DELETE by key) found no matching row."""

    category = "constraint"


class DuplicateKey(DatabaseError):
    """An INSERT supplied a key that already exists."""

    category = "constraint"


class PageError(DatabaseError):
    """A slotted page was asked to do something impossible (overflow,
    bad slot index, corrupt header)."""


# ---------------------------------------------------------------------------
# WAL errors
# ---------------------------------------------------------------------------


class WalError(ReproError):
    """Base class for write-ahead-log errors."""

    category = "wal"


class RecoveryError(WalError):
    """Recovery found log state it cannot reconcile."""


class ChecksumError(WalError):
    """A frame checksum did not match its payload."""
