"""Exception hierarchy for the NVWAL reproduction.

Every error raised by this package derives from :class:`ReproError` so that
callers can catch the whole family with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package.

    Every subclass carries two stable classification attributes:

    ``category`` — a coarse, stable error class ("sql", "schema",
    "constraint", "txn", ...) that the differential fuzzer compares
    against real SQLite's error classes.  Two engines "agree" on a
    failing statement when their categories match, even though messages
    and exception types differ.

    ``retryable`` — whether retrying the *same* operation can succeed.
    Transient device hiccups (:class:`IoError`, :class:`BusyError`) are
    retryable; persistent hardware damage (:class:`MediaError`) and
    logical errors (:class:`SqlError`) are not.  The service layer's
    retry-with-backoff machinery keys off this flag, so every error in
    the hierarchy must classify itself honestly.
    """

    category = "internal"
    retryable = False


# ---------------------------------------------------------------------------
# Hardware simulation errors
# ---------------------------------------------------------------------------


class HardwareError(ReproError):
    """Base class for simulated-hardware errors."""

    category = "hw"


class AddressError(HardwareError):
    """An access touched an address outside any mapped device region."""


class AlignmentError(HardwareError):
    """An operation violated a required alignment (e.g. 8-byte persist)."""


class PowerFailure(HardwareError):
    """Raised by crash injection to unwind the software stack.

    Catching this exception models the machine losing power: all volatile
    simulated state has already been discarded by the time it propagates.
    """


class MediaError(HardwareError):
    """An NVRAM read hit an uncorrectable (poisoned) media unit.

    Models ECC-uncorrectable cell decay: the device *detects* the failure
    instead of silently returning garbage.  Recovery code treats the
    affected region as unreadable and salvages around it.

    Not retryable: a poisoned unit keeps failing until its whole ECC
    codeword is rewritten, so re-issuing the read cannot help.  Callers
    escalate instead (circuit breaker, degraded mode, salvage).
    """

    category = "media"
    retryable = False


# ---------------------------------------------------------------------------
# NVRAM heap errors
# ---------------------------------------------------------------------------


class HeapError(ReproError):
    """Base class for persistent-heap errors."""

    category = "heap"


class OutOfNvram(HeapError):
    """The NVRAM device has no free blocks left."""


class BadHandle(HeapError):
    """An operation referenced an unknown or already-freed allocation."""


class HeapStateError(HeapError):
    """An allocation was used in a state that does not permit the operation
    (e.g. marking a ``free`` block as ``in-use`` without pre-allocation)."""


# ---------------------------------------------------------------------------
# Storage / filesystem errors
# ---------------------------------------------------------------------------


class StorageError(ReproError):
    """Base class for block-device and filesystem errors."""

    category = "storage"


class NoSuchFile(StorageError):
    """Lookup of a file name that does not exist."""


class FileExists(StorageError):
    """Attempt to create a file name that already exists."""


class OutOfSpace(StorageError):
    """The block device has no free blocks left."""


class FsConsistencyError(StorageError):
    """The filesystem detected corrupted on-device metadata."""


class IoError(StorageError):
    """A block-device read or write failed transiently.

    eMMC devices occasionally fail a command and succeed on retry; the
    filesystem and WAL layers absorb these with bounded
    retry-with-backoff, so the error only propagates when the device
    keeps failing past the retry budget.  Even then the failure is
    *transient* — the service layer may retry the whole operation with
    its own (longer) backoff schedule.
    """

    category = "io"
    retryable = True


# ---------------------------------------------------------------------------
# Database errors
# ---------------------------------------------------------------------------


class DatabaseError(ReproError):
    """Base class for database-engine errors."""

    category = "db"


class SqlError(DatabaseError):
    """Syntax or semantic error in a SQL statement."""

    category = "sql"


class TableError(DatabaseError):
    """Unknown table, duplicate table, or schema mismatch."""

    category = "schema"


class TransactionError(DatabaseError):
    """Illegal transaction state transition (e.g. nested writers)."""

    category = "txn"


class BusyError(DatabaseError):
    """The database's single writer slot is held by another session.

    The ``SQLITE_BUSY`` equivalent: raised when a write transaction
    cannot be started because a different owner already holds one and
    the busy handler (if any) gave up waiting.  Retryable by definition —
    the holder will commit or roll back eventually.
    """

    category = "busy"
    retryable = True


class KeyNotFound(DatabaseError):
    """A keyed lookup (UPDATE/DELETE by key) found no matching row."""

    category = "constraint"


class DuplicateKey(DatabaseError):
    """An INSERT supplied a key that already exists."""

    category = "constraint"


class PageError(DatabaseError):
    """A slotted page was asked to do something impossible (overflow,
    bad slot index, corrupt header)."""


# ---------------------------------------------------------------------------
# WAL errors
# ---------------------------------------------------------------------------


class WalError(ReproError):
    """Base class for write-ahead-log errors."""

    category = "wal"


class RecoveryError(WalError):
    """Recovery found log state it cannot reconcile."""


class ChecksumError(WalError):
    """A frame checksum did not match its payload."""


# ---------------------------------------------------------------------------
# Service-layer errors
# ---------------------------------------------------------------------------


class ServiceError(ReproError):
    """Base class for errors raised by the concurrent service front end."""

    category = "service"


class DeadlineExceeded(ServiceError):
    """A request ran past its deadline before it could be served.

    Not retryable as-is: the caller's time budget is spent.  The client
    owns the decision to re-submit with a fresh deadline.
    """

    category = "deadline"
    retryable = False


class CircuitOpenError(ServiceError):
    """The media circuit breaker is open; writes are refused fast.

    Retryable after the breaker's cooldown — the service probes the
    hardware and closes the breaker when scrubbing comes back clean.
    """

    category = "breaker"
    retryable = True


class ReadOnlyError(ServiceError):
    """The service is in degraded read-only mode; writes are refused.

    Reads keep being served from the last committed snapshot.  Retryable:
    the service re-promotes to read-write after a successful background
    checkpoint + salvage pass.
    """

    category = "degraded"
    retryable = True
