"""Deterministic metrics primitives on the simulated clock.

Counters, gauges, and fixed-bucket latency histograms, registered
through a :class:`MetricsRegistry`.  Three design rules keep telemetry
safe to leave on everywhere:

* **Integer arithmetic only.**  Histogram buckets have integer bounds,
  integer counts, and quantiles are computed by an integer cumulative
  walk (``cum * 100 >= q * total``) returning a bucket upper bound —
  there is no floating-point accumulation anywhere, so two runs of the
  same seed produce byte-identical snapshots and merging partial
  histograms is exactly associative.
* **Free on the simulated clock.**  Instruments only *read*
  ``clock.now_ns``; they never call into the CPU model or advance time.
  A run with telemetry enabled spends the same simulated nanoseconds,
  bit for bit, as one with telemetry disabled (pinned by
  ``tests/telemetry/test_determinism.py``).
* **Cheap to disable.**  A disabled registry hands out shared no-op
  instruments; the module-level default (``set_default_enabled`` /
  ``telemetry_disabled``) lets harnesses toggle telemetry for systems
  they build internally without threading a flag through every layer.
"""

from __future__ import annotations

import contextlib
from bisect import bisect_left

_DEFAULT_ENABLED = True


def default_enabled() -> bool:
    """Whether systems built right now get an enabled registry."""
    return _DEFAULT_ENABLED


def set_default_enabled(flag: bool) -> None:
    """Set the process-wide default for newly built systems."""
    global _DEFAULT_ENABLED
    _DEFAULT_ENABLED = bool(flag)


@contextlib.contextmanager
def telemetry_disabled():
    """Build systems with telemetry off for the duration of the block.

    Only affects :class:`repro.system.System` instances *constructed*
    inside the block; existing registries keep their state."""
    previous = _DEFAULT_ENABLED
    set_default_enabled(False)
    try:
        yield
    finally:
        set_default_enabled(previous)


def _latency_bounds() -> tuple[int, ...]:
    """1-2-5 series from 1 us to 10 s, in nanoseconds."""
    bounds: list[int] = []
    decade = 1_000
    while decade <= 10_000_000_000:
        for mantissa in (1, 2, 5):
            value = decade * mantissa
            if value <= 10_000_000_000:
                bounds.append(value)
        decade *= 10
    return tuple(bounds)


#: Default bucket upper bounds for latency histograms (ns, inclusive).
LATENCY_BOUNDS = _latency_bounds()

#: Bucket bounds for small-count histograms (epoch sizes, batch sizes).
COUNT_BOUNDS = (1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128)


class Counter:
    """Monotone integer counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def snapshot(self) -> int:
        return self.value


class Gauge:
    """Last-written integer value (occupancy, sequence numbers)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def set(self, value) -> None:
        self.value = int(value)

    def snapshot(self) -> int:
        return self.value


class Histogram:
    """Fixed-bucket integer histogram with drift-free quantiles.

    ``bounds[i]`` is the *inclusive* upper bound of bucket ``i``; values
    past the last bound land in the overflow bucket.  Quantiles report
    the upper bound of the bucket holding the target rank (the observed
    maximum for the overflow bucket), so p50/p95/p99 are conservative,
    reproducible, and mergeable: merging is plain count addition, which
    is associative and commutative by construction.
    """

    __slots__ = ("name", "bounds", "counts", "overflow", "total", "sum", "max")

    def __init__(self, name: str, bounds: tuple[int, ...] = LATENCY_BOUNDS) -> None:
        self.name = name
        self.bounds = tuple(bounds)
        self.counts = [0] * len(self.bounds)
        self.overflow = 0
        self.total = 0
        self.sum = 0
        self.max = 0

    def observe(self, value) -> None:
        v = int(value)
        if v < 0:
            v = 0
        self.total += 1
        self.sum += v
        if v > self.max:
            self.max = v
        index = bisect_left(self.bounds, v)
        if index == len(self.bounds):
            self.overflow += 1
        else:
            self.counts[index] += 1

    def quantile(self, q_pct: int) -> int:
        """Value at the q-th percentile (integer, bucket upper bound).

        Clamped to the observed maximum, so a single sample reports its
        own value at every percentile rather than its bucket's bound.
        """
        if self.total == 0:
            return 0
        target = q_pct * self.total  # compare cum*100 >= q*total
        cum = 0
        for bound, count in zip(self.bounds, self.counts):
            cum += count
            if cum * 100 >= target:
                return min(bound, self.max)
        return self.max  # rank falls in the overflow bucket

    def merge_from(self, other: "Histogram") -> None:
        """Fold another histogram's counts into this one (same bounds)."""
        if self.bounds != other.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds: "
                f"{self.name} vs {other.name}"
            )
        for i, count in enumerate(other.counts):
            self.counts[i] += count
        self.overflow += other.overflow
        self.total += other.total
        self.sum += other.sum
        if other.max > self.max:
            self.max = other.max

    def snapshot(self) -> dict:
        """JSON-able state: summary quantiles plus raw bucket counts."""
        return {
            "count": self.total,
            "sum": self.sum,
            "max": self.max,
            "p50": self.quantile(50),
            "p95": self.quantile(95),
            "p99": self.quantile(99),
            "buckets": [
                [bound, count]
                for bound, count in zip(self.bounds, self.counts)
                if count
            ],
            "overflow": self.overflow,
            "bounds_id": f"{self.bounds[0]}:{self.bounds[-1]}:{len(self.bounds)}",
        }

    @classmethod
    def from_snapshot(
        cls, name: str, snap: dict, bounds: tuple[int, ...] | None = None
    ) -> "Histogram":
        """Rebuild a mergeable histogram from a :meth:`snapshot` dict."""
        if bounds is None:
            bounds = (
                COUNT_BOUNDS
                if snap.get("bounds_id", "").startswith(f"{COUNT_BOUNDS[0]}:")
                and snap.get("bounds_id")
                == f"{COUNT_BOUNDS[0]}:{COUNT_BOUNDS[-1]}:{len(COUNT_BOUNDS)}"
                else LATENCY_BOUNDS
            )
        hist = cls(name, bounds)
        index = {bound: i for i, bound in enumerate(hist.bounds)}
        for bound, count in snap.get("buckets", ()):
            hist.counts[index[bound]] = count
        hist.overflow = snap.get("overflow", 0)
        hist.total = snap.get("count", 0)
        hist.sum = snap.get("sum", 0)
        hist.max = snap.get("max", 0)
        return hist


class _NoopInstrument:
    """Shared do-nothing stand-in for every instrument of a disabled
    registry (one instance serves all names)."""

    __slots__ = ()

    name = "<disabled>"
    value = 0
    total = 0

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def observe(self, value) -> None:
        pass

    def quantile(self, q_pct: int) -> int:
        return 0

    def snapshot(self):
        return 0


_NOOP = _NoopInstrument()


class MetricsRegistry:
    """Process-local instrument registry for one simulated machine.

    Lives on :class:`repro.system.System` (``system.telemetry``) so a
    fresh same-seed run starts from a fresh registry and two such runs
    export byte-identical state.  The registry survives
    ``system.reboot()`` — counters span power cycles within one run,
    exactly like a real metrics agent scraping across restarts.
    """

    def __init__(self, clock, enabled: bool = True) -> None:
        from repro.telemetry.spans import Tracer

        self.clock = clock
        self.enabled = enabled
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        #: Structured events: {"name", "at_ns", ...fields} in emit order.
        self.events: list[dict] = []
        self.tracer = Tracer(clock, enabled=enabled)

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return _NOOP
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return _NOOP
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def histogram(
        self, name: str, bounds: tuple[int, ...] = LATENCY_BOUNDS
    ) -> Histogram:
        if not self.enabled:
            return _NOOP
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram(name, bounds)
        return hist

    def event(self, name: str, **fields) -> None:
        """Record one structured event stamped with simulated time."""
        if not self.enabled:
            return
        record = {"name": name, "at_ns": int(self.clock.now_ns)}
        record.update(fields)
        self.events.append(record)

    def events_named(self, name: str) -> list[dict]:
        return [e for e in self.events if e["name"] == name]

    def snapshot(self) -> dict:
        """Canonical JSON-able state of every instrument, sorted by name."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: h.snapshot()
                for name, h in sorted(self._histograms.items())
            },
        }
