"""Canonical telemetry export: build, serialize, digest, validate.

One export document carries everything a run produced — final metric
state, structured events, spans, and the collector's time series — in a
canonical JSON encoding (sorted keys, no whitespace) whose SHA-256 is
the run's telemetry digest.  Two same-seed runs must produce
byte-identical documents; the chaos harness and CI both check exactly
that.

The validator is hand-rolled (no external schema library): it walks the
document and returns human-readable problem strings, empty when the
document is well-formed.
"""

from __future__ import annotations

import hashlib
import json

SCHEMA_VERSION = 1


def build_export(registry, collector=None, meta: dict | None = None) -> dict:
    """Assemble the canonical export document for one run."""
    return {
        "schema": SCHEMA_VERSION,
        "meta": dict(meta or {}),
        "metrics": registry.snapshot(),
        "events": list(registry.events),
        "spans": registry.tracer.snapshot(),
        "series": collector.series() if collector is not None else None,
    }


def canonical_json(doc: dict) -> str:
    """Canonical encoding: sorted keys, minimal separators."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def export_digest(doc: dict) -> str:
    """SHA-256 over the canonical encoding."""
    return hashlib.sha256(canonical_json(doc).encode("utf-8")).hexdigest()


def write_export(doc: dict, path: str) -> None:
    """Write the canonical encoding (plus digest line) to ``path``.

    The file itself is canonical JSON — byte-identical across same-seed
    runs, so CI can compare two runs with ``cmp``.
    """
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(canonical_json(doc))
        fh.write("\n")


def load_export(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------


def _expect(problems, condition, message) -> bool:
    if not condition:
        problems.append(message)
    return condition


def _check_histogram(problems, name: str, snap) -> None:
    if not _expect(problems, isinstance(snap, dict), f"histogram {name}: not a dict"):
        return
    for key in ("count", "sum", "max", "p50", "p95", "p99", "overflow"):
        value = snap.get(key)
        _expect(
            problems,
            isinstance(value, int) and value >= 0,
            f"histogram {name}: {key} must be a non-negative int, got {value!r}",
        )
    buckets = snap.get("buckets")
    if not _expect(
        problems, isinstance(buckets, list), f"histogram {name}: buckets missing"
    ):
        return
    last_bound = 0
    bucket_total = 0
    for pair in buckets:
        if not _expect(
            problems,
            isinstance(pair, list) and len(pair) == 2,
            f"histogram {name}: malformed bucket entry {pair!r}",
        ):
            return
        bound, count = pair
        _expect(
            problems,
            isinstance(bound, int) and bound > last_bound,
            f"histogram {name}: bucket bounds must be strictly increasing",
        )
        _expect(
            problems,
            isinstance(count, int) and count > 0,
            f"histogram {name}: bucket counts must be positive ints",
        )
        last_bound = bound
        bucket_total += count if isinstance(count, int) else 0
    _expect(
        problems,
        bucket_total + snap.get("overflow", 0) == snap.get("count", -1),
        f"histogram {name}: bucket counts + overflow != count",
    )


def validate_export(doc) -> list[str]:
    """Structural validation; returns problem strings (empty = valid)."""
    problems: list[str] = []
    if not _expect(problems, isinstance(doc, dict), "document is not an object"):
        return problems
    _expect(
        problems,
        doc.get("schema") == SCHEMA_VERSION,
        f"schema must be {SCHEMA_VERSION}, got {doc.get('schema')!r}",
    )
    metrics = doc.get("metrics")
    if _expect(problems, isinstance(metrics, dict), "metrics section missing"):
        for section in ("counters", "gauges"):
            values = metrics.get(section)
            if _expect(
                problems,
                isinstance(values, dict),
                f"metrics.{section} missing",
            ):
                for name, value in values.items():
                    _expect(
                        problems,
                        isinstance(value, int),
                        f"{section}.{name} must be an int, got {value!r}",
                    )
        histograms = metrics.get("histograms")
        if _expect(problems, isinstance(histograms, dict), "metrics.histograms missing"):
            for name, snap in histograms.items():
                _check_histogram(problems, name, snap)
    events = doc.get("events")
    if _expect(problems, isinstance(events, list), "events section missing"):
        for i, event in enumerate(events):
            ok = isinstance(event, dict) and isinstance(
                event.get("name"), str
            ) and isinstance(event.get("at_ns"), int)
            _expect(problems, ok, f"events[{i}]: needs string name and int at_ns")
    spans = doc.get("spans")
    if _expect(problems, isinstance(spans, dict), "spans section missing"):
        for key in ("count", "dropped", "open"):
            _expect(
                problems,
                isinstance(spans.get(key), int),
                f"spans.{key} must be an int",
            )
    series = doc.get("series")
    if series is not None and _expect(
        problems, isinstance(series, dict), "series must be an object or null"
    ):
        samples = series.get("samples")
        if _expect(problems, isinstance(samples, list), "series.samples missing"):
            last_t = -1
            for i, sample in enumerate(samples):
                if not _expect(
                    problems,
                    isinstance(sample, dict)
                    and isinstance(sample.get("t_ns"), int),
                    f"series.samples[{i}]: needs int t_ns",
                ):
                    continue
                _expect(
                    problems,
                    sample["t_ns"] >= last_t,
                    f"series.samples[{i}]: timestamps must be non-decreasing",
                )
                last_t = sample["t_ns"]
                for section in ("counters", "gauges"):
                    _expect(
                        problems,
                        isinstance(sample.get(section), dict),
                        f"series.samples[{i}].{section} missing",
                    )
    return problems
