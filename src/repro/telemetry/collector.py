"""Scheduler-driven collector: registry snapshots → JSON time series.

The :class:`Collector` is a read-only daemon on the cooperative
scheduler: every ``interval_ns`` of simulated time it appends one sample
— counters and gauges at that instant — to an append-only series.  It
never touches the CPU model, so spawning it changes *nothing* about when
regular jobs run or how much simulated time a run spends (the scheduler
pops wake times in order; a read-only daemon's wakes interleave without
moving anyone else's).

Samples carry counters and gauges only; histograms are heavyweight and
change shape rarely, so they are exported once per run from the registry
(and merged across runs with :meth:`Histogram.merge_from`, which is
associative — see ``tests/telemetry/test_metrics.py``).
"""

from __future__ import annotations

#: Default sampling cadence: 0.5 simulated ms.
DEFAULT_INTERVAL_NS = 500_000

#: Samples retained before the series stops growing (the truncation is
#: recorded in ``dropped`` so an export never silently loses its tail).
DEFAULT_MAX_SAMPLES = 20_000


class Collector:
    """Periodic sampler over one :class:`MetricsRegistry`."""

    def __init__(
        self,
        registry,
        interval_ns: int = DEFAULT_INTERVAL_NS,
        max_samples: int = DEFAULT_MAX_SAMPLES,
    ) -> None:
        self.registry = registry
        self.interval_ns = interval_ns
        self.max_samples = max_samples
        #: Append-only samples: {"t_ns", "counters", "gauges"}.
        self.samples: list[dict] = []
        self.dropped = 0

    def sample(self) -> None:
        """Append one sample at the current simulated time."""
        registry = self.registry
        if not registry.enabled:
            return
        if len(self.samples) >= self.max_samples:
            self.dropped += 1
            return
        self.samples.append(
            {
                "t_ns": int(registry.clock.now_ns),
                "counters": {
                    name: c.value
                    for name, c in sorted(registry._counters.items())
                },
                "gauges": {
                    name: g.value
                    for name, g in sorted(registry._gauges.items())
                },
            }
        )

    def daemon(self):
        """Daemon generator for :meth:`Scheduler.spawn`.

        Spawn a *fresh* call per scheduler (a generator is single-use;
        after a power failure the driver abandons it and spawns another
        on the next epoch's scheduler — the sample list carries over).
        """
        while True:
            yield self.interval_ns
            self.sample()

    def series(self) -> dict:
        """JSON-able time series."""
        return {
            "interval_ns": self.interval_ns,
            "dropped": self.dropped,
            "samples": self.samples,
        }
