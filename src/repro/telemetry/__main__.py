from repro.telemetry.cli import main

raise SystemExit(main())
