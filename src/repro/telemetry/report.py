"""Plain-text dashboard rendered from one telemetry export document.

The report groups instruments by layer prefix (``service.``, ``wal.``,
``repl.``, ``workload.``), prints counters, gauges, and histogram
quantiles, summarizes spans and events, and draws ASCII time-series
charts for selected signals (WAL occupancy and breaker trips by
default) from the collector samples.
"""

from __future__ import annotations

_CHART_WIDTH = 50
_CHART_ROWS = 18

#: (kind, key) series charted by default when present in the samples.
DEFAULT_CHARTS = (
    ("gauges", "wal.frames"),
    ("counters", "service.breaker_trips"),
)


def _fmt_ns(ns: int) -> str:
    if ns >= 1_000_000_000:
        return f"{ns / 1e9:.2f}s"
    if ns >= 1_000_000:
        return f"{ns / 1e6:.2f}ms"
    if ns >= 1_000:
        return f"{ns / 1e3:.1f}us"
    return f"{ns}ns"


def _layer(name: str) -> str:
    return name.split(".", 1)[0] if "." in name else "other"


def _render_kv_table(title: str, values: dict) -> list[str]:
    lines = [title, "-" * len(title)]
    by_layer: dict[str, list[tuple[str, int]]] = {}
    for name, value in sorted(values.items()):
        by_layer.setdefault(_layer(name), []).append((name, value))
    width = max((len(n) for n in values), default=0)
    for layer in sorted(by_layer):
        for name, value in by_layer[layer]:
            lines.append(f"  {name:<{width}}  {value:>12,}")
    return lines + [""]


def _render_histograms(histograms: dict) -> list[str]:
    title = "histograms (latency ns unless noted)"
    lines = [title, "-" * len(title)]
    if not histograms:
        return lines + ["  (none)", ""]
    width = max(len(n) for n in histograms)
    header = (
        f"  {'name':<{width}}  {'count':>8}  {'p50':>10}  {'p95':>10}  "
        f"{'p99':>10}  {'max':>10}"
    )
    lines.append(header)
    for name, snap in sorted(histograms.items()):
        is_count = name.endswith("_txns") or name.endswith("_count")
        fmt = (lambda v: f"{v:,}") if is_count else _fmt_ns
        lines.append(
            f"  {name:<{width}}  {snap['count']:>8,}  {fmt(snap['p50']):>10}  "
            f"{fmt(snap['p95']):>10}  {fmt(snap['p99']):>10}  "
            f"{fmt(snap['max']):>10}"
        )
    return lines + [""]


def _render_spans(spans: dict) -> list[str]:
    title = "spans"
    lines = [title, "-" * len(title)]
    lines.append(
        f"  {spans.get('count', 0):,} recorded, {spans.get('open', 0):,} left "
        f"open (crash/abandon), {spans.get('dropped', 0):,} dropped at cap"
    )
    by_name = spans.get("by_name", {})
    if by_name:
        width = max(len(n) for n in by_name)
        for name, agg in sorted(by_name.items()):
            mean = agg["total_ns"] // max(1, agg["count"])
            lines.append(
                f"  {name:<{width}}  {agg['count']:>8,}  "
                f"mean {_fmt_ns(mean):>10}  max {_fmt_ns(agg['max_ns']):>10}"
            )
    return lines + [""]


def _render_events(events: list) -> list[str]:
    title = "events"
    lines = [title, "-" * len(title)]
    if not events:
        return lines + ["  (none)", ""]
    by_name: dict[str, int] = {}
    for event in events:
        by_name[event["name"]] = by_name.get(event["name"], 0) + 1
    for name, count in sorted(by_name.items()):
        lines.append(f"  {name}: {count}")
    tail = events[-8:]
    lines.append(f"  last {len(tail)}:")
    for event in tail:
        fields = ", ".join(
            f"{k}={v}"
            for k, v in sorted(event.items())
            if k not in ("name", "at_ns")
        )
        lines.append(
            f"    t={_fmt_ns(event['at_ns']):>10}  {event['name']}  {fields}"
        )
    return lines + [""]


def _series_points(samples: list, kind: str, key: str) -> list[tuple[int, int]]:
    points = []
    for sample in samples:
        section = sample.get(kind, {})
        if key in section:
            points.append((sample["t_ns"], section[key]))
    return points


def render_chart(samples: list, kind: str, key: str) -> list[str]:
    """One ASCII bar chart of a sampled signal over simulated time."""
    points = _series_points(samples, kind, key)
    title = f"{key} over simulated time ({kind[:-1]})"
    lines = [title, "-" * len(title)]
    if not points:
        return lines + ["  (no samples carry this signal)", ""]
    # Down-sample evenly to at most _CHART_ROWS rows.
    step = max(1, len(points) // _CHART_ROWS)
    picked = points[::step]
    if picked[-1] != points[-1]:
        picked.append(points[-1])
    peak = max(value for _t, value in picked)
    for t_ns, value in picked:
        bar = "#" * (value * _CHART_WIDTH // peak if peak else 0)
        lines.append(f"  t={t_ns / 1e6:>9.2f}ms  {value:>10,} |{bar}")
    return lines + [""]


def render_report(doc: dict, charts=DEFAULT_CHARTS) -> str:
    """The full plain-text dashboard for one export document."""
    meta = doc.get("meta", {})
    metrics = doc.get("metrics", {})
    series = doc.get("series") or {}
    samples = series.get("samples", [])
    head = "telemetry report"
    lines = [head, "=" * len(head)]
    if meta:
        lines.append(
            "  " + "  ".join(f"{k}={v}" for k, v in sorted(meta.items()))
        )
    if samples:
        span_ms = (samples[-1]["t_ns"] - samples[0]["t_ns"]) / 1e6
        lines.append(
            f"  {len(samples)} samples over {span_ms:.2f} simulated ms "
            f"(every {series.get('interval_ns', 0) / 1e6:.2f} ms)"
        )
    lines.append("")
    lines += _render_kv_table("counters", metrics.get("counters", {}))
    lines += _render_kv_table("gauges", metrics.get("gauges", {}))
    lines += _render_histograms(metrics.get("histograms", {}))
    lines += _render_spans(doc.get("spans", {}))
    lines += _render_events(doc.get("events", []))
    for kind, key in charts:
        lines += render_chart(samples, kind, key)
    return "\n".join(lines)
