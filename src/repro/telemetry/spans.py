"""Lightweight spans with explicit parent/child links.

A :class:`Span` is one timed unit of work on the simulated clock; a
:class:`Tracer` hands them out with deterministic sequential ids.
Parents are passed *explicitly* (``tracer.start(name, parent=root)``)
rather than kept on an implicit context stack: requests here are
cooperatively scheduled generators, so many transactions interleave on
one Python thread and a shared LIFO stack would attribute children to
whichever request last yielded.  Explicit parents cost one argument and
stay correct under any interleaving.

Spans never advance the clock; an abandoned request (power failure mid
flight) simply leaves its span open — exported with ``end_ns: -1``,
which is itself a deterministic record of where the crash landed.
"""

from __future__ import annotations

#: Spans retained per tracer before new starts are counted but dropped.
#: Chaos-scale runs sit far below this; the cap bounds memory on very
#: long storms while keeping the dropped count deterministic.
DEFAULT_MAX_SPANS = 50_000


class Span:
    """One timed unit of work."""

    __slots__ = ("span_id", "name", "parent_id", "start_ns", "end_ns")

    def __init__(
        self, span_id: int, name: str, parent_id: int, start_ns: int
    ) -> None:
        self.span_id = span_id
        self.name = name
        self.parent_id = parent_id
        self.start_ns = start_ns
        self.end_ns: int | None = None

    def duration_ns(self) -> int:
        """Elapsed simulated ns (0 while the span is still open)."""
        if self.end_ns is None:
            return 0
        return self.end_ns - self.start_ns

    def as_dict(self) -> dict:
        return {
            "id": self.span_id,
            "name": self.name,
            "parent": self.parent_id,
            "start_ns": self.start_ns,
            "end_ns": -1 if self.end_ns is None else self.end_ns,
        }


class _NoopSpan:
    """Shared stand-in when the tracer is disabled or at capacity."""

    __slots__ = ()

    span_id = 0
    parent_id = 0
    name = "<disabled>"
    start_ns = 0
    end_ns = 0

    def duration_ns(self) -> int:
        return 0


_NOOP_SPAN = _NoopSpan()


class Tracer:
    """Deterministic span factory for one simulated machine."""

    def __init__(
        self, clock, enabled: bool = True, max_spans: int = DEFAULT_MAX_SPANS
    ) -> None:
        self.clock = clock
        self.enabled = enabled
        self.max_spans = max_spans
        self.spans: list[Span] = []
        self.dropped = 0
        self._next_id = 1

    def start(self, name: str, parent=None):
        """Open a span; pass the parent span explicitly (or None)."""
        if not self.enabled:
            return _NOOP_SPAN
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            return _NOOP_SPAN
        span = Span(
            self._next_id,
            name,
            parent.span_id if parent is not None else 0,
            int(self.clock.now_ns),
        )
        self._next_id += 1
        self.spans.append(span)
        return span

    def finish(self, span) -> None:
        """Close a span at the current simulated time."""
        if span is _NOOP_SPAN or not self.enabled:
            return
        span.end_ns = int(self.clock.now_ns)

    def snapshot(self) -> dict:
        """JSON-able summary: per-name aggregate + the raw span list."""
        by_name: dict[str, list[int]] = {}
        for span in self.spans:
            if span.end_ns is not None:
                by_name.setdefault(span.name, []).append(span.duration_ns())
        return {
            "count": len(self.spans),
            "dropped": self.dropped,
            "open": sum(1 for s in self.spans if s.end_ns is None),
            "by_name": {
                name: {
                    "count": len(durations),
                    "total_ns": sum(durations),
                    "max_ns": max(durations),
                }
                for name, durations in sorted(by_name.items())
            },
            "spans": [s.as_dict() for s in self.spans],
        }
