"""A seeded all-layer storm that produces one telemetry artifact.

One run exercises every instrumented layer at once — the concurrent
service with the group-commit coalescer, the NVWAL backend crossing
checkpoints, semisync replication to live followers, and a mid-run NVRAM
decay storm that trips the circuit breaker, demotes the service to
read-only, and lets the maintenance daemon heal and re-promote it.  The
collector daemon samples throughout, so the exported artifact carries
counters, gauges, histograms, spans, structured events, and the JSON
time series for all four layers (``service.*``, ``wal.*``, epoch
histograms, ``repl.*``).

Everything is a deterministic function of the seed: running the same
seed twice produces byte-identical export documents (CI compares them
with ``cmp``).
"""

from __future__ import annotations

from repro.faults import FaultPlan, MediaFaultSpec
from repro.replication.cluster import Cluster, ReplicationConfig
from repro.service.chaos import _session_stream
from repro.service.sched import Scheduler
from repro.service.server import ServiceConfig
from repro.service.session import ClientSession
from repro.telemetry.collector import Collector
from repro.telemetry.export import build_export


def _storm_job(system, storms: int, interval_ns: int):
    """Decay NVRAM cells mid-run (no power loss), ``storms`` times."""
    for _ in range(storms):
        yield interval_ns
        if system.nvram_faults is None:
            return
        system.nvram_faults.on_power_loss(system.nvram)


def run_storm(
    seed: int = 0,
    sessions: int = 3,
    txns_per_session: int = 12,
    txn_size: int = 3,
    followers: int = 2,
    mode: str = "semisync",
    scheme: str = "uh_ls_diff",
    storms: int = 2,
    storm_interval_ns: int = 3_000_000,
    checkpoint_threshold: int = 24,
    collect_interval_ns: int = 200_000,
) -> dict:
    """Run the storm; returns the canonical telemetry export document."""
    cluster = Cluster(
        ReplicationConfig(
            followers=followers,
            mode=mode,
            scheme=scheme,
            checkpoint_threshold=checkpoint_threshold,
        ),
        seed=seed,
    )
    system = cluster.primary_system
    if storms:
        system.inject_faults(
            FaultPlan(
                seed=seed,
                media=MediaFaultSpec(bit_flips=1, stuck_units=1, poison_units=2),
            )
        )
    service = cluster.start_service(
        ServiceConfig(group_commit=True), seed=seed
    )
    registry = system.telemetry
    collector = Collector(registry, interval_ns=collect_interval_ns)

    clients = [
        ClientSession(service, f"c{s}", deadline_budget_ns=60_000_000)
        for s in range(sessions)
    ]
    for s, client in enumerate(clients):
        for txn in _session_stream(
            seed, s, sessions, txns_per_session, txn_size
        ):
            client.enqueue(txn)

    scheduler = Scheduler(cluster.clock)
    for client in clients:
        scheduler.spawn(client.session_id, client.run())
    scheduler.spawn("maintenance", service.maintenance(), daemon=True)
    scheduler.spawn("batcher", service.commit_batcher(), daemon=True)
    scheduler.spawn("replicator", cluster.replicator.daemon(), daemon=True)
    scheduler.spawn("collector", collector.daemon(), daemon=True)
    if storms:
        scheduler.spawn(
            "storms", _storm_job(system, storms, storm_interval_ns), daemon=True
        )
    scheduler.run()
    collector.sample()  # one closing sample at the final simulated time

    meta = {
        "kind": "telemetry_storm",
        "seed": seed,
        "sessions": sessions,
        "txns_per_session": txns_per_session,
        "followers": followers,
        "mode": mode,
        "scheme": scheme,
        "storms": storms,
        "acked": service.stats.txns_acked,
        "gave_up": sum(1 for c in clients if c.gave_up),
        "head_seq": cluster.head_seq,
        "sim_time_ms": int(cluster.clock.now_ns // 1_000_000),
    }
    return build_export(registry, collector, meta=meta)
