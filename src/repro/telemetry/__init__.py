"""Deterministic telemetry spine: metrics, spans, and JSON export.

Every instrument runs on the *simulated* clock and is a pure function of
the run's seed: same seed → byte-identical export documents, regardless
of host machine or ``--jobs`` parallelism.  Telemetry never calls into
the CPU model, so enabling it leaves per-transaction simulated time
bit-identical (pinned by ``tests/telemetry/test_determinism.py`` and the
``telemetry_overhead`` bench probe).

Layout:

- :mod:`repro.telemetry.metrics` — counters, gauges, integer-bucket
  histograms, the process-local :class:`MetricsRegistry` (one per
  :class:`~repro.system.System`, at ``system.telemetry``).
- :mod:`repro.telemetry.spans` — lightweight spans with explicit
  parent/child links and deterministic ids.
- :mod:`repro.telemetry.collector` — scheduler daemon sampling the
  registry into an append-only JSON time series.
- :mod:`repro.telemetry.export` — canonical JSON export, SHA-256
  digests, structural validation.
- :mod:`repro.telemetry.report` — plain-text dashboard + ASCII charts.
- :mod:`repro.telemetry.storm` — a seeded all-layer storm producing one
  artifact (``python -m repro.telemetry run``).
"""

from repro.telemetry.collector import Collector
from repro.telemetry.export import (
    build_export,
    canonical_json,
    export_digest,
    load_export,
    validate_export,
    write_export,
)
from repro.telemetry.metrics import (
    COUNT_BOUNDS,
    LATENCY_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_enabled,
    set_default_enabled,
    telemetry_disabled,
)
from repro.telemetry.report import render_report
from repro.telemetry.spans import Span, Tracer

__all__ = [
    "COUNT_BOUNDS",
    "Collector",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BOUNDS",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "build_export",
    "canonical_json",
    "default_enabled",
    "export_digest",
    "load_export",
    "render_report",
    "set_default_enabled",
    "telemetry_disabled",
    "validate_export",
    "write_export",
]
