"""``python -m repro.telemetry`` — run a seeded storm, render reports.

Subcommands:

``run``
    Run the all-layer telemetry storm for a seed and write the canonical
    export artifact (prints its digest).  Two runs of the same seed
    write byte-identical files.

``report``
    Validate an export artifact and print the plain-text dashboard
    (counters, gauges, histogram quantiles, spans, events, ASCII
    time-series charts).  Exits non-zero when validation fails.
"""

from __future__ import annotations

import argparse
import sys

from repro.telemetry.export import (
    export_digest,
    load_export,
    validate_export,
    write_export,
)
from repro.telemetry.report import render_report

DEFAULT_ARTIFACT = "telemetry-run.json"


def _cmd_run(args) -> int:
    from repro.telemetry.storm import run_storm

    doc = run_storm(
        seed=args.seed,
        sessions=args.sessions,
        txns_per_session=args.txns,
        followers=args.followers,
        mode=args.mode,
    )
    problems = validate_export(doc)
    if problems:
        for problem in problems:
            print(f"invalid export: {problem}", file=sys.stderr)
        return 1
    write_export(doc, args.out)
    meta = doc["meta"]
    print(
        f"seed={args.seed} acked={meta['acked']} head_seq={meta['head_seq']} "
        f"sim_time_ms={meta['sim_time_ms']}"
    )
    print(f"digest={export_digest(doc)}")
    print(f"wrote {args.out}")
    return 0


def _cmd_report(args) -> int:
    try:
        doc = load_export(args.artifact)
    except (OSError, ValueError) as exc:
        print(f"cannot load {args.artifact}: {exc}", file=sys.stderr)
        return 1
    problems = validate_export(doc)
    if problems:
        for problem in problems:
            print(f"invalid export: {problem}", file=sys.stderr)
        return 1
    try:
        print(render_report(doc))
    except BrokenPipeError:  # report piped into head/less and cut short
        sys.stderr.close()
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="Deterministic telemetry: seeded storm runs + reports.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run the all-layer storm, write artifact")
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--sessions", type=int, default=3)
    run_p.add_argument("--txns", type=int, default=12, help="txns per session")
    run_p.add_argument("--followers", type=int, default=2)
    run_p.add_argument(
        "--mode", default="semisync", choices=("async", "semisync", "sync")
    )
    run_p.add_argument("--out", default=DEFAULT_ARTIFACT)
    run_p.set_defaults(func=_cmd_run)

    report_p = sub.add_parser("report", help="validate + render an artifact")
    report_p.add_argument("artifact", nargs="?", default=DEFAULT_ARTIFACT)
    report_p.set_defaults(func=_cmd_report)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
