"""NVWAL reproduction: exploiting NVRAM in write-ahead logging.

A from-scratch, simulation-backed reproduction of *NVWAL: Exploiting NVRAM
in Write-Ahead Logging* (Kim et al., ASPLOS 2016): a SQLite-like embedded
database whose write-ahead log lives in byte-addressable NVRAM, with
byte-granularity differential logging, transaction-aware lazy
synchronization, and user-level NVRAM heap management — plus the file-WAL
baselines on an eMMC/EXT4 storage stack, all running on a deterministic
simulated-hardware substrate.

Quickstart::

    from repro import Database, System, tuna
    from repro.wal import NvwalBackend, NvwalScheme

    system = System(tuna(write_latency_ns=500))
    db = Database(system, wal=NvwalBackend(system, NvwalScheme.uh_ls_diff()))
    db.execute("CREATE TABLE kv (key INTEGER PRIMARY KEY, value TEXT)")
    with db.transaction():
        db.execute("INSERT INTO kv VALUES (1, 'hello nvram')")
    print(db.query("SELECT value FROM kv WHERE key = 1"))
"""

from repro.config import PROFILES, SystemConfig, nexus5, tuna
from repro.db.database import Database
from repro.errors import ReproError
from repro.system import System

__version__ = "1.0.0"

__all__ = [
    "Database",
    "PROFILES",
    "ReproError",
    "System",
    "SystemConfig",
    "nexus5",
    "tuna",
    "__version__",
]
