"""Block storage substrate: eMMC flash device + simplified EXT4.

The WAL-on-flash baseline of the paper (Figures 8 and 9) is dominated by two
costs this package models:

* eMMC page program / cache-flush latency (:mod:`repro.storage.blockdev`);
* EXT4 ordered-mode journal traffic — at least 16 KB of metadata journaling
  per logging transaction (:mod:`repro.storage.ext4`).

Every block write is recorded by :mod:`repro.storage.trace`, which is what
regenerates the Figure 8 block-address-vs-time plot.
"""

from repro.storage.blockdev import BlockDevice
from repro.storage.ext4 import Ext4FileSystem, File
from repro.storage.trace import BlockTrace, TraceEvent

__all__ = [
    "BlockDevice",
    "Ext4FileSystem",
    "File",
    "BlockTrace",
    "TraceEvent",
]
