"""eMMC flash block device model.

Models the SanDisk iNAND eMMC of the Nexus 5 at the level the WAL baseline
cares about: page-granularity programs with a volatile on-device write cache
that only a cache-flush command (what ``fsync`` ultimately issues through
the block layer) makes durable.

A power failure keeps durable pages and lands each cached page with a
seeded-random probability — enough to force the filesystem journal to do
its job in crash tests.
"""

from __future__ import annotations

import random

from repro.config import BlockDevConfig
from repro.errors import AddressError
from repro.hw import stats as statnames
from repro.hw.clock import SimClock
from repro.hw.stats import Stats, TimeBucket
from repro.storage.trace import BlockTrace


class BlockDevice:
    """Page-addressable flash device with a volatile write cache."""

    def __init__(
        self,
        config: BlockDevConfig,
        clock: SimClock,
        stats: Stats,
        trace: BlockTrace | None = None,
        seed: int | None = None,
    ) -> None:
        self.config = config
        self.clock = clock
        self.stats = stats
        self.trace = trace or BlockTrace()
        self.page_size = config.page_size
        self.num_pages = config.num_pages
        self._durable: dict[int, bytes] = {}
        self._cache: dict[int, bytes] = {}
        self._rng = random.Random(seed)
        self._zero_page = bytes(self.page_size)
        # Optional transient-failure injector (repro.faults): timed page
        # commands may raise IoError; read_page_silent is exempt.
        self.fault_injector = None

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------

    def _check(self, pno: int) -> None:
        if not 0 <= pno < self.num_pages:
            raise AddressError(f"page {pno} out of range (device has {self.num_pages})")

    def write_page(self, pno: int, data: bytes, tag: str = "unknown") -> None:
        """Program one page (lands in the device write cache)."""
        self._check(pno)
        if len(data) != self.page_size:
            raise AddressError(
                f"page write must be exactly {self.page_size} bytes, got {len(data)}"
            )
        if self.fault_injector is not None:
            self.fault_injector.before_op("write", pno)
        self._cache[pno] = bytes(data)
        self.clock.advance(self.config.write_latency_ns)
        self.stats.add_time(TimeBucket.BLOCK_IO, self.config.write_latency_ns)
        self.stats.count(statnames.BLOCK_WRITES)
        self.trace.record(self.clock.now_ns, "write", pno, self.page_size, tag)

    def read_page(self, pno: int, tag: str = "unknown") -> bytes:
        """Read one page (write cache wins over durable media)."""
        self._check(pno)
        if self.fault_injector is not None:
            self.fault_injector.before_op("read", pno)
        self.clock.advance(self.config.read_latency_ns)
        self.stats.add_time(TimeBucket.BLOCK_IO, self.config.read_latency_ns)
        self.stats.count(statnames.BLOCK_READS)
        self.trace.record(self.clock.now_ns, "read", pno, self.page_size, tag)
        page = self._cache.get(pno)
        if page is None:
            page = self._durable.get(pno, self._zero_page)
        return page

    def read_page_silent(self, pno: int) -> bytes:
        """Read without time charge or trace (mount-time bulk scans)."""
        self._check(pno)
        page = self._cache.get(pno)
        if page is None:
            page = self._durable.get(pno, self._zero_page)
        return page

    def flush(self) -> None:
        """Cache-flush command: make every cached page durable."""
        self.clock.advance(self.config.flush_cmd_ns)
        self.stats.add_time(TimeBucket.BLOCK_IO, self.config.flush_cmd_ns)
        self.stats.count(statnames.BLOCK_FLUSHES)
        self.trace.record(self.clock.now_ns, "flush", 0, 0, "barrier")
        self._durable.update(self._cache)
        self._cache.clear()

    # ------------------------------------------------------------------
    # crash semantics
    # ------------------------------------------------------------------

    def power_fail(
        self, land_probability: float = 0.5, rng: random.Random | None = None
    ) -> None:
        """Cut power: each cached page independently lands or is lost.

        Pass the system-level seeded ``rng`` (the crash controller's) to
        make the landing pattern deterministic per scenario seed; the
        device falls back to its own stream for standalone use.  Pages
        are drawn in sorted order so the outcome does not depend on
        cache insertion history.
        """
        draw = (rng or self._rng).random
        for pno in sorted(self._cache):
            if draw() < land_probability:
                self._durable[pno] = self._cache[pno]
        self._cache.clear()

    def cached_page_count(self) -> int:
        """Pages currently in the volatile write cache."""
        return len(self._cache)
