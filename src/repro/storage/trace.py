"""Block I/O trace recording.

Figure 8 of the paper is a blktrace plot of 10 insert transactions: block
address on the y-axis, time on the x-axis, with the points categorized as
EXT4 journal, ``.db-wal``, or ``.db`` traffic.  :class:`BlockTrace` records
exactly that, and the Figure 8 experiment renders it as series plus the
per-category byte totals the paper quotes (284 KB stock vs 172 KB optimized
journal+data traffic).
"""

from __future__ import annotations

from collections import Counter
from typing import NamedTuple


class TraceEvent(NamedTuple):
    """One block-device operation.

    A NamedTuple rather than a dataclass: every timed block operation
    allocates one, and the tuple constructor is several times cheaper
    than a frozen dataclass ``__init__``.
    """

    time_ns: float
    op: str  # "write" | "read" | "flush"
    block: int
    length: int
    tag: str  # e.g. "journal", "file:test.db", "file:test.db-wal"


class BlockTrace:
    """Accumulates :class:`TraceEvent` records."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []
        self.enabled = True

    def record(self, time_ns: float, op: str, block: int, length: int, tag: str) -> None:
        """Append one event (no-op while disabled)."""
        if self.enabled:
            self.events.append(TraceEvent(time_ns, op, block, length, tag))

    def clear(self) -> None:
        """Drop all recorded events."""
        self.events.clear()

    # ------------------------------------------------------------------
    # queries used by the Figure 8 experiment
    # ------------------------------------------------------------------

    def writes(self, tag_prefix: str | None = None) -> list[TraceEvent]:
        """All write events, optionally filtered by tag prefix."""
        return [
            e
            for e in self.events
            if e.op == "write"
            and (tag_prefix is None or e.tag.startswith(tag_prefix))
        ]

    def bytes_by_tag(self) -> dict[str, int]:
        """Total bytes written per tag."""
        totals: Counter[str] = Counter()
        for event in self.events:
            if event.op == "write":
                totals[event.tag] += event.length
        return dict(totals)

    def total_write_bytes(self) -> int:
        """Total bytes written across all tags."""
        return sum(e.length for e in self.events if e.op == "write")

    def series(self) -> dict[str, list[tuple[float, int]]]:
        """Per-tag (time_sec, block_address) series — the Figure 8 axes."""
        out: dict[str, list[tuple[float, int]]] = {}
        for event in self.events:
            if event.op != "write":
                continue
            out.setdefault(event.tag, []).append(
                (event.time_ns / 1e9, event.block)
            )
        return out

    def to_csv(self) -> str:
        """blktrace-style CSV (time_sec, op, block, length, tag) for
        plotting Figure 8 with external tools."""
        lines = ["time_sec,op,block,length,tag"]
        for event in self.events:
            lines.append(
                f"{event.time_ns / 1e9:.9f},{event.op},{event.block},"
                f"{event.length},{event.tag}"
            )
        return "\n".join(lines) + "\n"
