"""Simplified EXT4 filesystem with an ordered-mode metadata journal.

The paper's WAL-on-flash baseline pays "at least 16 KBytes I/O traffic to
underlying storage mainly due to metadata journaling overhead in the EXT4
file system" per logging transaction (Section 1).  This module reproduces
the mechanism behind that number:

* files are page-granular, with inodes holding extent lists;
* ``fsync`` in ordered mode writes the file's dirty *data* pages first,
  flushes the device, then commits a journal transaction containing every
  dirty *metadata* block (inode-table block, block bitmap, group
  descriptor, directory) framed by a descriptor and a commit block, and
  flushes again;
* appending to a file dirties the inode (size + mtime), the bitmap, and the
  group descriptor, so a stock SQLite WAL append journals
  descriptor + inode + bitmap + group-descriptor + commit = 20 KB — the
  paper's "two blocks (16KB, 4KB)... written to the EXT4 journal";
* overwriting pre-allocated pages dirties only the inode (mtime), so the
  WALDIO-style optimization of Section 5.4 journals
  descriptor + inode + commit = 12 KB, the ~40% journal-traffic reduction
  of Figure 8.

Metadata truly round-trips through serialized blocks: ``mount()`` replays
committed journal transactions (highest sequence number wins) and rebuilds
all in-memory state from the block images, so crash tests exercise real
recovery, not bookkeeping shortcuts.
"""

from __future__ import annotations

import heapq
import struct

from repro.errors import (
    FileExists,
    FsConsistencyError,
    IoError,
    NoSuchFile,
    OutOfSpace,
    StorageError,
)
from repro.storage.blockdev import BlockDevice

_SUPER_MAGIC = 0x4558_5434_5349_4D31  # "EXT4SIM1"
_SUPER_FMT = "<QIIIIIIIIII"

_INODE_SIZE = 256
_INODE_HEADER_FMT = "<BxH4xQQ"  # used, n_extents, size, mtime
_INODE_HEADER_SIZE = struct.calcsize(_INODE_HEADER_FMT)
_EXTENT_FMT = "<II"
_MAX_EXTENTS = (_INODE_SIZE - _INODE_HEADER_SIZE) // 8

_DIRENT_SIZE = 64
_DIRENT_FMT = "<B3xI56s"

_JMAGIC = 0x4A42_4432  # "JBD2"
_JDESC_FMT = "<IIQI"  # magic, type, seq, n_blocks
_JTYPE_DESC = 1
_JTYPE_COMMIT = 2

_NUM_INODES = 128
_DIR_BLOCKS = 2
_JOURNAL_BLOCKS = 256

#: Attempts per page command before a transient IoError is given up on.
#: Must exceed IoFaultSpec.max_consecutive so injected transients always
#: clear within the budget.
_IO_RETRIES = 4


class Inode:
    """In-memory inode: size, mtime, and the block of every file page."""

    __slots__ = ("used", "size", "mtime", "page_blocks")

    def __init__(self) -> None:
        self.used = False
        self.size = 0
        self.mtime = 0
        #: Device block number of each file page, in page order.
        self.page_blocks: list[int] = []


class File:
    """Handle to one file; the POSIX-ish surface the WAL layer uses."""

    def __init__(self, fs: "Ext4FileSystem", ino: int, name: str) -> None:
        self._fs = fs
        self.ino = ino
        self.name = name

    @property
    def size(self) -> int:
        """Current file size in bytes."""
        return self._fs._inode(self.ino).size

    def write(self, offset: int, data: bytes) -> None:
        """Buffered write (OS page cache); durable only after fsync."""
        self._fs.write_file(self.ino, offset, data)

    def read(self, offset: int, length: int) -> bytes:
        """Read through the page cache."""
        return self._fs.read_file(self.ino, offset, length)

    def fsync(self) -> None:
        """Flush data, then journal *all* dirty metadata (incl. mtime)."""
        self._fs.fsync(self.ino, datasync=False)

    def fdatasync(self) -> None:
        """Flush data; journal metadata only if retrieval depends on it."""
        self._fs.fsync(self.ino, datasync=True)

    def truncate(self, size: int) -> None:
        """Shrink (or logically extend) the file to ``size`` bytes."""
        self._fs.truncate(self.ino, size)

    def preallocate(self, total_pages: int) -> None:
        """Extend the file to ``total_pages`` pages of zeros now, so later
        appends become metadata-free overwrites (the WALDIO optimization)."""
        self._fs.preallocate(self.ino, total_pages)

    def allocated_pages(self) -> int:
        """Number of device pages currently backing the file."""
        return len(self._fs._inode(self.ino).page_blocks)


class Ext4FileSystem:
    """The filesystem over one :class:`BlockDevice`."""

    def __init__(self, device: BlockDevice) -> None:
        self.device = device
        self.page_size = device.page_size
        self._layout()
        # volatile state, rebuilt by mount()
        self._inodes: list[Inode] = []
        self._dir: dict[str, int] = {}
        # Free-space tracking is lazy: ``_free_heap`` holds only recycled
        # blocks; everything at or past ``_free_cursor`` that is not in
        # ``_used_set`` is virgin-free.  Allocation still hands out the
        # globally lowest free block (min of heap top and cursor), so the
        # layout is identical to a fully materialized free set — without
        # building a set over the whole data area on every mount.
        self._free_heap: list[int] = []
        self._free_cursor = self.data_start
        self._used_set: set[int] = set()
        self._page_cache: dict[tuple[int, int], bytearray] = {}
        self._dirty_pages: set[tuple[int, int]] = set()
        self._dirty_inodes: set[int] = set()
        self._dirty_bitmap_blocks: set[int] = set()
        self._dir_dirty = False
        self._gdesc_dirty = False
        self._journal_head = 0
        self._journal_seq = 1
        self._pending_home: dict[int, bytes] = {}
        self._mounted = False

    # ------------------------------------------------------------------
    # device access with bounded retry
    # ------------------------------------------------------------------

    def _dev_write(self, pno: int, data: bytes, tag: str) -> None:
        """``write_page`` with bounded retry-with-backoff on transient
        :class:`IoError`; re-raises once the retry budget is exhausted."""
        for attempt in range(_IO_RETRIES):
            try:
                self.device.write_page(pno, data, tag=tag)
                return
            except IoError:
                if attempt == _IO_RETRIES - 1:
                    raise
                self.device.clock.advance(
                    self.device.config.write_latency_ns << attempt
                )

    def _dev_read(self, pno: int, tag: str) -> bytes:
        """``read_page`` with the same bounded retry-with-backoff."""
        for attempt in range(_IO_RETRIES):
            try:
                return self.device.read_page(pno, tag=tag)
            except IoError:
                if attempt == _IO_RETRIES - 1:
                    raise
                self.device.clock.advance(
                    self.device.config.read_latency_ns << attempt
                )
        raise AssertionError("unreachable")

    # ------------------------------------------------------------------
    # layout
    # ------------------------------------------------------------------

    def _layout(self) -> None:
        p = self.page_size
        self.itab_start = 1
        self.itab_blocks = _NUM_INODES * _INODE_SIZE // p
        self.bitmap_start = self.itab_start + self.itab_blocks
        data_guess = self.device.num_pages
        self.bitmap_blocks = (data_guess + p * 8 - 1) // (p * 8)
        self.gdesc_start = self.bitmap_start + self.bitmap_blocks
        self.dir_start = self.gdesc_start + 1
        self.journal_start = self.dir_start + _DIR_BLOCKS
        self.journal_blocks = _JOURNAL_BLOCKS
        self.data_start = self.journal_start + self.journal_blocks

    # ------------------------------------------------------------------
    # format / mount
    # ------------------------------------------------------------------

    def format(self) -> None:
        """Create an empty filesystem (mkfs)."""
        super_block = struct.pack(
            _SUPER_FMT,
            _SUPER_MAGIC,
            _NUM_INODES,
            self.itab_start,
            self.itab_blocks,
            self.bitmap_start,
            self.bitmap_blocks,
            self.gdesc_start,
            self.dir_start,
            _DIR_BLOCKS,
            self.journal_start,
            self.journal_blocks,
        ).ljust(self.page_size, b"\x00")
        self._dev_write(0, super_block, tag="metadata")
        empty = bytes(self.page_size)
        for bno in range(self.itab_start, self.data_start):
            self._dev_write(bno, empty, tag="metadata")
        self.device.flush()
        self.mount()

    def mount(self) -> None:
        """Replay the journal and rebuild in-memory state from blocks."""
        raw = self.device.read_page_silent(0)
        magic = struct.unpack_from("<Q", raw, 0)[0]
        if magic != _SUPER_MAGIC:
            raise FsConsistencyError("superblock magic mismatch (not formatted?)")
        replayed = self._replay_journal()
        # Real journal recovery writes the journaled blocks to their home
        # locations before the ring can be reused; otherwise the next
        # commit at ring position 0 would overwrite the only durable copy.
        for bno in sorted(replayed):
            self._dev_write(bno, replayed[bno], tag="metadata")
        if replayed:
            self.device.flush()
        self._pending_home = {}

        def block_image(bno: int) -> bytes:
            if bno in replayed:
                return replayed[bno]
            return self.device.read_page_silent(bno)

        # inodes
        self._inodes = []
        for ino in range(_NUM_INODES):
            bno = self.itab_start + (ino * _INODE_SIZE) // self.page_size
            off = (ino * _INODE_SIZE) % self.page_size
            self._inodes.append(_decode_inode(block_image(bno), off))
        # directory
        self._dir = {}
        for i in range(_DIR_BLOCKS):
            img = block_image(self.dir_start + i)
            for j in range(self.page_size // _DIRENT_SIZE):
                used, ino, name_b = struct.unpack_from(
                    _DIRENT_FMT, img, j * _DIRENT_SIZE
                )
                if used:
                    self._dir[name_b.rstrip(b"\x00").decode()] = ino
        # bitmap -> used set; free space is its (lazy) complement over the
        # data area, tracked by cursor + recycle heap instead of a set.
        self._used_set = set()
        for i in range(self.bitmap_blocks):
            img = block_image(self.bitmap_start + i)
            if not any(img):
                continue  # fresh filesystems are almost entirely zero
            base_bit = i * self.page_size * 8
            for byte_idx, byte in enumerate(img):
                if byte == 0:
                    continue
                for bit in range(8):
                    if byte & (1 << bit):
                        bno = self.data_start + base_bit + byte_idx * 8 + bit
                        if bno < self.device.num_pages:
                            self._used_set.add(bno)
        self._free_heap = []
        self._free_cursor = self.data_start

        self._page_cache.clear()
        self._dirty_pages.clear()
        self._dirty_inodes.clear()
        self._dirty_bitmap_blocks.clear()
        self._dir_dirty = False
        self._gdesc_dirty = False
        self._mounted = True

    def unmount(self) -> None:
        """Sync everything and write pending journal metadata home."""
        for ino, inode in enumerate(self._inodes):
            if inode.used:
                self.fsync(ino, datasync=False)
        self._checkpoint_journal()
        self.device.flush()
        self._mounted = False

    def power_fail(self, land_probability: float = 0.5) -> None:
        """Lose OS caches and (probabilistically) the device cache."""
        self.device.power_fail(land_probability)
        self._mounted = False

    # ------------------------------------------------------------------
    # directory operations
    # ------------------------------------------------------------------

    def create(self, name: str) -> File:
        """Create an empty file."""
        self._require_mounted()
        if name in self._dir:
            raise FileExists(name)
        if len(name.encode()) > 55:
            raise StorageError(f"file name too long: {name!r}")
        ino = next(
            (i for i in range(1, _NUM_INODES) if not self._inodes[i].used), None
        )
        if ino is None:
            raise OutOfSpace("inode table full")
        inode = self._inodes[ino]
        inode.used = True
        inode.size = 0
        inode.mtime = int(self.device.clock.now_ns)
        inode.page_blocks = []
        self._dir[name] = ino
        self._dir_dirty = True
        self._dirty_inodes.add(ino)
        return File(self, ino, name)

    def open(self, name: str) -> File:
        """Open an existing file."""
        self._require_mounted()
        if name not in self._dir:
            raise NoSuchFile(name)
        return File(self, self._dir[name], name)

    def exists(self, name: str) -> bool:
        """Whether ``name`` exists."""
        return name in self._dir

    def unlink(self, name: str) -> None:
        """Delete a file, freeing its blocks."""
        self._require_mounted()
        if name not in self._dir:
            raise NoSuchFile(name)
        ino = self._dir.pop(name)
        inode = self._inodes[ino]
        for bno in inode.page_blocks:
            self._free_block(bno)
        for key in [k for k in self._page_cache if k[0] == ino]:
            self._page_cache.pop(key)
            self._dirty_pages.discard(key)
        inode.used = False
        inode.size = 0
        inode.page_blocks = []
        self._dir_dirty = True
        self._dirty_inodes.add(ino)

    def list_names(self) -> list[str]:
        """All file names, sorted."""
        return sorted(self._dir)

    # ------------------------------------------------------------------
    # file data path
    # ------------------------------------------------------------------

    def write_file(self, ino: int, offset: int, data: bytes) -> None:
        """Write into the page cache, allocating blocks for new pages."""
        self._require_mounted()
        inode = self._inode(ino)
        end = offset + len(data)
        pos = offset
        while pos < end:
            page_idx = pos // self.page_size
            in_page = pos % self.page_size
            chunk = min(end - pos, self.page_size - in_page)
            self._ensure_page_allocated(ino, page_idx)
            page = self._cached_page(ino, page_idx)
            page[in_page : in_page + chunk] = data[pos - offset : pos - offset + chunk]
            self._dirty_pages.add((ino, page_idx))
            pos += chunk
        if end > inode.size:
            inode.size = end
        inode.mtime = int(self.device.clock.now_ns)
        self._dirty_inodes.add(ino)

    def read_file(self, ino: int, offset: int, length: int) -> bytes:
        """Read through the page cache (charges device reads on misses)."""
        self._require_mounted()
        inode = self._inode(ino)
        length = max(0, min(length, inode.size - offset))
        out = bytearray(length)
        pos = 0
        name = self._name_of(ino)
        while pos < length:
            page_idx = (offset + pos) // self.page_size
            in_page = (offset + pos) % self.page_size
            chunk = min(length - pos, self.page_size - in_page)
            key = (ino, page_idx)
            page = self._page_cache.get(key)
            if page is None:
                if page_idx < len(inode.page_blocks):
                    raw = self._dev_read(
                        inode.page_blocks[page_idx], tag=f"file:{name}"
                    )
                else:
                    raw = bytes(self.page_size)
                page = bytearray(raw)
                self._page_cache[key] = page
            out[pos : pos + chunk] = page[in_page : in_page + chunk]
            pos += chunk
        return bytes(out)

    def truncate(self, ino: int, size: int) -> None:
        """Set file size; free whole pages beyond the new size."""
        self._require_mounted()
        inode = self._inode(ino)
        keep_pages = (size + self.page_size - 1) // self.page_size
        while len(inode.page_blocks) > keep_pages:
            self._free_block(inode.page_blocks.pop())
            key = (ino, len(inode.page_blocks))
            self._page_cache.pop(key, None)
            self._dirty_pages.discard(key)
        tail = size % self.page_size
        if size < inode.size and tail and keep_pages <= len(inode.page_blocks):
            # POSIX: bytes between a shrink point and a later extension
            # read as zeros — scrub the stale tail of the last kept page.
            page = self._cached_page(ino, keep_pages - 1)
            page[tail:] = bytes(self.page_size - tail)
            self._dirty_pages.add((ino, keep_pages - 1))
        inode.size = size
        inode.mtime = int(self.device.clock.now_ns)
        self._dirty_inodes.add(ino)

    def preallocate(self, ino: int, total_pages: int) -> None:
        """Grow the file to ``total_pages`` zero pages (WALDIO-style)."""
        self._require_mounted()
        inode = self._inode(ino)
        for page_idx in range(len(inode.page_blocks), total_pages):
            self._ensure_page_allocated(ino, page_idx)
            self._cached_page(ino, page_idx)
            self._dirty_pages.add((ino, page_idx))
        inode.size = max(inode.size, total_pages * self.page_size)
        inode.mtime = int(self.device.clock.now_ns)
        self._dirty_inodes.add(ino)

    # ------------------------------------------------------------------
    # fsync: the ordered-mode journal
    # ------------------------------------------------------------------

    def fsync(self, ino: int, datasync: bool = False) -> None:
        """Ordered-mode sync of one file.

        1. write the file's dirty data pages in place;
        2. device cache flush (data-before-metadata ordering);
        3. if metadata must be journaled, write a journal transaction
           (descriptor + dirty metadata blocks + commit) and flush again.

        ``datasync=True`` skips the journal when only the mtime changed —
        the fdatasync fast path SQLite relies on.
        """
        self._require_mounted()
        inode = self._inode(ino)
        name = self._name_of(ino)
        wrote_data = False
        for key in sorted(k for k in self._dirty_pages if k[0] == ino):
            _ino, page_idx = key
            self._dev_write(
                inode.page_blocks[page_idx],
                bytes(self._page_cache[key]),
                tag=f"file:{name}",
            )
            self._dirty_pages.discard(key)
            wrote_data = True
        if wrote_data:
            self.device.flush()

        structural = bool(self._dirty_bitmap_blocks) or self._dir_dirty
        inode_dirty = ino in self._dirty_inodes
        must_journal = structural or (inode_dirty and not datasync)
        if datasync and inode_dirty and structural:
            # fdatasync still journals when allocation changed.
            must_journal = True
        if must_journal:
            self._journal_commit()

    def sync_all(self) -> None:
        """fsync every file plus global metadata (the ``sync`` syscall)."""
        for ino, inode in enumerate(self._inodes):
            if inode.used:
                self.fsync(ino, datasync=False)
        if self._dirty_inodes or self._dirty_bitmap_blocks or self._dir_dirty:
            self._journal_commit()

    # ------------------------------------------------------------------
    # journal machinery
    # ------------------------------------------------------------------

    def _dirty_metadata_blocks(self) -> dict[int, bytes]:
        """Serialize every dirty metadata block to its home image."""
        images: dict[int, bytes] = {}
        itab_blocks_dirty = {
            self.itab_start + (ino * _INODE_SIZE) // self.page_size
            for ino in self._dirty_inodes
        }
        for bno in sorted(itab_blocks_dirty):
            images[bno] = self._encode_inode_block(bno)
        for i in sorted(self._dirty_bitmap_blocks):
            images[self.bitmap_start + i] = self._encode_bitmap_block(i)
        if self._dirty_bitmap_blocks or self._gdesc_dirty:
            images[self.gdesc_start] = self._encode_gdesc_block()
        if self._dir_dirty:
            for i in range(_DIR_BLOCKS):
                images[self.dir_start + i] = self._encode_dir_block(i)
        return images

    def _journal_commit(self) -> None:
        """Write one journal transaction for all dirty metadata."""
        images = self._dirty_metadata_blocks()
        if not images:
            return
        needed = len(images) + 2
        if self._journal_head + needed > self.journal_blocks:
            self._checkpoint_journal()
        seq = self._journal_seq
        self._journal_seq += 1
        home_blocks = sorted(images)
        desc = struct.pack(
            _JDESC_FMT, _JMAGIC, _JTYPE_DESC, seq, len(home_blocks)
        ) + b"".join(struct.pack("<I", b) for b in home_blocks)
        jpos = self.journal_start + self._journal_head
        self._dev_write(jpos, desc.ljust(self.page_size, b"\x00"), tag="journal")
        for i, bno in enumerate(home_blocks):
            self._dev_write(jpos + 1 + i, images[bno], tag="journal")
        commit = struct.pack(_JDESC_FMT, _JMAGIC, _JTYPE_COMMIT, seq, 0)
        self._dev_write(
            jpos + 1 + len(home_blocks),
            commit.ljust(self.page_size, b"\x00"),
            tag="journal",
        )
        self.device.flush()
        self._journal_head += needed
        self._pending_home.update(images)
        self._dirty_inodes.clear()
        self._dirty_bitmap_blocks.clear()
        self._dir_dirty = False
        self._gdesc_dirty = False

    def _checkpoint_journal(self) -> None:
        """Write journaled metadata to home locations and reset the ring."""
        for bno in sorted(self._pending_home):
            self._dev_write(bno, self._pending_home[bno], tag="metadata")
        if self._pending_home:
            self.device.flush()
        self._pending_home.clear()
        self._journal_head = 0

    def _replay_journal(self) -> dict[int, bytes]:
        """Scan the ring for committed transactions; latest seq wins."""
        txns: dict[int, dict[int, bytes]] = {}
        pos = 0
        while pos < self.journal_blocks:
            raw = self.device.read_page_silent(self.journal_start + pos)
            magic, jtype, seq, n_blocks = struct.unpack_from(_JDESC_FMT, raw, 0)
            if magic != _JMAGIC or jtype != _JTYPE_DESC:
                pos += 1
                continue
            home_blocks = [
                struct.unpack_from("<I", raw, struct.calcsize(_JDESC_FMT) + 4 * i)[0]
                for i in range(n_blocks)
            ]
            end = pos + 1 + n_blocks
            if end >= self.journal_blocks:
                break
            commit_raw = self.device.read_page_silent(self.journal_start + end)
            cmagic, ctype, cseq, _ = struct.unpack_from(_JDESC_FMT, commit_raw, 0)
            if cmagic == _JMAGIC and ctype == _JTYPE_COMMIT and cseq == seq:
                txns[seq] = {
                    bno: self.device.read_page_silent(self.journal_start + pos + 1 + i)
                    for i, bno in enumerate(home_blocks)
                }
                self._journal_seq = max(self._journal_seq, seq + 1)
                pos = end + 1
            else:
                pos += 1
        replayed: dict[int, bytes] = {}
        for seq in sorted(txns):
            replayed.update(txns[seq])
        self._journal_head = 0
        return replayed

    # ------------------------------------------------------------------
    # serialization helpers
    # ------------------------------------------------------------------

    def _encode_inode_block(self, bno: int) -> bytes:
        first_ino = (bno - self.itab_start) * (self.page_size // _INODE_SIZE)
        out = bytearray(self.page_size)
        for i in range(self.page_size // _INODE_SIZE):
            ino = first_ino + i
            if ino < _NUM_INODES:
                _encode_inode(self._inodes[ino], out, i * _INODE_SIZE)
        return bytes(out)

    def _encode_bitmap_block(self, index: int) -> bytes:
        out = bytearray(self.page_size)
        base_bit = index * self.page_size * 8
        for bno in self._used_set:
            bit = bno - self.data_start - base_bit
            if 0 <= bit < self.page_size * 8:
                out[bit // 8] |= 1 << (bit % 8)
        return bytes(out)

    def _encode_gdesc_block(self) -> bytes:
        used = len(self._used_set)
        free = self.device.num_pages - self.data_start - used
        return struct.pack("<QQ", free, used).ljust(self.page_size, b"\x00")

    def _encode_dir_block(self, index: int) -> bytes:
        out = bytearray(self.page_size)
        entries = sorted(self._dir.items())
        per_block = self.page_size // _DIRENT_SIZE
        for slot, (name, ino) in enumerate(entries):
            if index * per_block <= slot < (index + 1) * per_block:
                struct.pack_into(
                    _DIRENT_FMT,
                    out,
                    (slot - index * per_block) * _DIRENT_SIZE,
                    1,
                    ino,
                    name.encode(),
                )
        return bytes(out)

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------

    def _alloc_block(self) -> int:
        used = self._used_set
        heap = self._free_heap
        # Recycled entries may have been overtaken by the cursor and
        # re-allocated; drop stale heads before comparing.
        while heap and heap[0] in used:
            heapq.heappop(heap)
        n = self.device.num_pages
        cursor = self._free_cursor
        while cursor < n and cursor in used:
            cursor += 1
        if heap and (cursor >= n or heap[0] < cursor):
            bno = heapq.heappop(heap)
            self._free_cursor = cursor
        elif cursor < n:
            bno = cursor
            self._free_cursor = cursor + 1
        else:
            raise OutOfSpace("no free data blocks")
        used.add(bno)
        self._mark_bitmap_dirty(bno)
        self._gdesc_dirty = True
        return bno

    def _is_free(self, bno: int) -> bool:
        return (
            self.data_start <= bno < self.device.num_pages
            and bno not in self._used_set
        )

    def _free_block(self, bno: int) -> None:
        if self._is_free(bno):
            raise FsConsistencyError(f"double free of block {bno}")
        self._used_set.discard(bno)
        heapq.heappush(self._free_heap, bno)
        self._mark_bitmap_dirty(bno)
        self._gdesc_dirty = True

    def _mark_bitmap_dirty(self, bno: int) -> None:
        bit = bno - self.data_start
        self._dirty_bitmap_blocks.add(bit // (self.page_size * 8))

    # ------------------------------------------------------------------
    # small internals
    # ------------------------------------------------------------------

    def _inode(self, ino: int) -> Inode:
        inode = self._inodes[ino]
        if not inode.used:
            raise NoSuchFile(f"inode {ino} is not in use")
        return inode

    def _name_of(self, ino: int) -> str:
        for name, i in self._dir.items():
            if i == ino:
                return name
        return f"ino{ino}"

    def _ensure_page_allocated(self, ino: int, page_idx: int) -> None:
        inode = self._inode(ino)
        while len(inode.page_blocks) <= page_idx:
            inode.page_blocks.append(self._alloc_block())
            # A recycled block still holds its previous owner's bytes on
            # the device — a fresh allocation must read (and flush) as
            # zeros, so seed the cache instead of faulting the page in.
            idx = len(inode.page_blocks) - 1
            self._page_cache[(ino, idx)] = bytearray(self.page_size)
            self._dirty_pages.add((ino, idx))
            self._dirty_inodes.add(ino)

    def _cached_page(self, ino: int, page_idx: int) -> bytearray:
        key = (ino, page_idx)
        page = self._page_cache.get(key)
        if page is None:
            inode = self._inode(ino)
            if page_idx < len(inode.page_blocks) and (ino, page_idx) not in self._dirty_pages:
                raw = self.device.read_page_silent(inode.page_blocks[page_idx])
            else:
                raw = bytes(self.page_size)
            page = bytearray(raw)
            self._page_cache[key] = page
        return page

    def _require_mounted(self) -> None:
        if not self._mounted:
            raise StorageError("filesystem is not mounted")


def _encode_inode(inode: Inode, out: bytearray, offset: int) -> None:
    extents = _runs(inode.page_blocks)
    if len(extents) > _MAX_EXTENTS:
        raise FsConsistencyError(
            f"file too fragmented: {len(extents)} extents (max {_MAX_EXTENTS})"
        )
    struct.pack_into(
        _INODE_HEADER_FMT,
        out,
        offset,
        1 if inode.used else 0,
        len(extents),
        inode.size,
        inode.mtime,
    )
    for i, (start, length) in enumerate(extents):
        struct.pack_into(
            _EXTENT_FMT, out, offset + _INODE_HEADER_SIZE + 8 * i, start, length
        )


def _decode_inode(block: bytes, offset: int) -> Inode:
    used, n_extents, size, mtime = struct.unpack_from(_INODE_HEADER_FMT, block, offset)
    inode = Inode()
    inode.used = bool(used)
    inode.size = size
    inode.mtime = mtime
    for i in range(n_extents):
        start, length = struct.unpack_from(
            _EXTENT_FMT, block, offset + _INODE_HEADER_SIZE + 8 * i
        )
        inode.page_blocks.extend(range(start, start + length))
    return inode


def _runs(blocks: list[int]) -> list[tuple[int, int]]:
    """Compress a block list into (start, length) extents."""
    extents: list[tuple[int, int]] = []
    for bno in blocks:
        if extents and extents[-1][0] + extents[-1][1] == bno:
            extents[-1] = (extents[-1][0], extents[-1][1] + 1)
        else:
            extents.append((bno, 1))
    return extents
