"""System facade: one simulated machine.

A :class:`System` wires together the clock, stats, NVRAM device, CPU cache,
CPU, crash controller, Heapo heap manager, eMMC block device, and EXT4
filesystem — everything the database stack needs from "hardware".

Reboot semantics: :meth:`power_fail` drops all volatile state (landing a
random subset of in-flight bytes, per the crash model) and raises nothing;
:meth:`reboot` then re-attaches the persistent services (heap namespace,
filesystem journal replay).  Durable NVRAM and flash contents survive, so
database recovery code can be tested end to end.
"""

from __future__ import annotations

from typing import Callable

from repro.config import SystemConfig, tuna
from repro.faults import BlockIoFaultInjector, FaultPlan, NvramFaultInjector
from repro.hw.cache import CacheHierarchy
from repro.hw.clock import SimClock
from repro.hw.cpu import Cpu
from repro.hw.crash import CrashController
from repro.hw.memory import NvramDevice
from repro.hw.stats import Stats
from repro.nvram.heapo import Heapo
from repro.storage.blockdev import BlockDevice
from repro.storage.ext4 import Ext4FileSystem
from repro.storage.trace import BlockTrace
from repro.telemetry.metrics import MetricsRegistry, default_enabled


class System:
    """One simulated machine: CPU + NVRAM + flash + filesystem."""

    def __init__(
        self,
        config: SystemConfig | None = None,
        seed: int | None = 0,
        clock: SimClock | None = None,
    ):
        self.config = config or tuna()
        self.seed = seed
        # Replication runs several machines side by side; passing a shared
        # clock keeps writer and followers on one simulated timeline.
        self.clock = clock if clock is not None else SimClock()
        self.stats = Stats()
        self.nvram = NvramDevice(self.config.nvram)
        self.cache = CacheHierarchy(self.config.cache, self.nvram)
        self.cpu = Cpu(self.config, self.clock, self.cache, self.nvram, self.stats)
        self.crash = CrashController(
            self.cpu,
            self.nvram,
            land_probability=self.config.crash_land_probability,
            seed=seed,
        )
        self.heapo = Heapo(self.cpu, self.nvram)
        self.trace = BlockTrace()
        self.blockdev = BlockDevice(
            self.config.blockdev, self.clock, self.stats, self.trace, seed=seed
        )
        self.fs = Ext4FileSystem(self.blockdev)
        self.fs.format()
        # Telemetry rides the simulated clock and never touches the CPU
        # model, so instrumented code spends zero simulated time on it.
        # The registry survives power cycles (reboot() doesn't reset it):
        # telemetry is the observer's notebook, not machine state.
        self.telemetry = MetricsRegistry(self.clock, enabled=default_enabled())
        self.fault_plan: FaultPlan | None = None
        self.nvram_faults: NvramFaultInjector | None = None
        self.io_faults: BlockIoFaultInjector | None = None
        # Machine-level power state.  Distinct from crash.powered_off: a
        # controller-fired crash only lands CPU/NVRAM state; the machine
        # side (eMMC cache, media decay, unmount) completes here.
        self._machine_off = False

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------

    def inject_faults(self, plan: FaultPlan) -> None:
        """Install a seeded :class:`FaultPlan` on this machine.

        Media faults take effect at the next power failure (decayed
        cells are observed on reboot); I/O faults start failing timed
        block commands immediately.
        """
        self.fault_plan = plan
        if plan.media is not None:
            self.nvram_faults = NvramFaultInjector(plan.media, plan.seed)
            self.nvram.fault_injector = self.nvram_faults
        if plan.io is not None:
            self.io_faults = BlockIoFaultInjector(plan.io, plan.seed)
            self.blockdev.fault_injector = self.io_faults

    # ------------------------------------------------------------------
    # power-cycle choreography
    # ------------------------------------------------------------------

    def power_fail(self) -> None:
        """Cut power without unwinding the Python stack.

        Volatile CPU-side and device-cache state is probabilistically
        landed and then discarded; durable state is untouched.  Call
        :meth:`reboot` afterwards to bring services back.

        Idempotent: cutting power on a machine that is already off does
        nothing (see :meth:`CrashController.apply_power_loss`); after a
        controller-fired crash it completes the machine-level loss
        (eMMC cache, unmount) without re-landing CPU/NVRAM state.  With a
        fault plan installed, media decay is applied after the landing
        lottery, so it corrupts exactly the bytes recovery will read.
        """
        self.crash.apply_power_loss()  # no-op if the controller already did
        if self._machine_off:
            return
        self._machine_off = True
        self.blockdev.power_fail(
            self.config.crash_land_probability, rng=self.crash.rng
        )
        if self.nvram_faults is not None:
            self.nvram_faults.on_power_loss(self.nvram)
        self.fs._mounted = False

    def reboot(
        self,
        arm_after_ops: int | None = None,
        op_filter: Callable[[str], bool] | None = None,
    ) -> list[int]:
        """Boot the machine after a power failure.

        Replays the filesystem journal, re-attaches the NVRAM heap
        namespace, and runs heap recovery (reclaiming pending blocks).
        Returns the addresses of the reclaimed blocks — the database layer
        uses this during its own recovery.

        ``arm_after_ops`` re-arms the crash controller *before* the
        persistent services come back, so the torture harness can sweep
        crash points inside heap recovery and WAL recovery itself
        (crash-during-recovery, Section 4.3's hardest case).
        """
        self.crash.power_on()
        self._machine_off = False
        if arm_after_ops is not None:
            self.crash.arm(arm_after_ops, op_filter)
        self.fs.mount()
        self.heapo.attach()
        return self.heapo.recover()

    # ------------------------------------------------------------------
    # conveniences
    # ------------------------------------------------------------------

    @property
    def page_size(self) -> int:
        """Database/filesystem page size."""
        return self.config.page_size

    def elapsed_seconds(self) -> float:
        """Simulated seconds since boot."""
        return self.clock.now_ns / 1e9

    def __repr__(self) -> str:
        return (
            f"System(profile={self.config.name!r}, "
            f"nvram_write_latency_ns={self.config.nvram.write_latency_ns})"
        )
