"""System facade: one simulated machine.

A :class:`System` wires together the clock, stats, NVRAM device, CPU cache,
CPU, crash controller, Heapo heap manager, eMMC block device, and EXT4
filesystem — everything the database stack needs from "hardware".

Reboot semantics: :meth:`power_fail` drops all volatile state (landing a
random subset of in-flight bytes, per the crash model) and raises nothing;
:meth:`reboot` then re-attaches the persistent services (heap namespace,
filesystem journal replay).  Durable NVRAM and flash contents survive, so
database recovery code can be tested end to end.
"""

from __future__ import annotations

from repro.config import SystemConfig, tuna
from repro.hw.cache import CacheHierarchy
from repro.hw.clock import SimClock
from repro.hw.cpu import Cpu
from repro.hw.crash import CrashController
from repro.hw.memory import NvramDevice
from repro.hw.stats import Stats
from repro.nvram.heapo import Heapo
from repro.storage.blockdev import BlockDevice
from repro.storage.ext4 import Ext4FileSystem
from repro.storage.trace import BlockTrace


class System:
    """One simulated machine: CPU + NVRAM + flash + filesystem."""

    def __init__(self, config: SystemConfig | None = None, seed: int | None = 0):
        self.config = config or tuna()
        self.seed = seed
        self.clock = SimClock()
        self.stats = Stats()
        self.nvram = NvramDevice(self.config.nvram)
        self.cache = CacheHierarchy(self.config.cache, self.nvram)
        self.cpu = Cpu(self.config, self.clock, self.cache, self.nvram, self.stats)
        self.crash = CrashController(
            self.cpu,
            self.nvram,
            land_probability=self.config.crash_land_probability,
            seed=seed,
        )
        self.heapo = Heapo(self.cpu, self.nvram)
        self.trace = BlockTrace()
        self.blockdev = BlockDevice(
            self.config.blockdev, self.clock, self.stats, self.trace, seed=seed
        )
        self.fs = Ext4FileSystem(self.blockdev)
        self.fs.format()

    # ------------------------------------------------------------------
    # power-cycle choreography
    # ------------------------------------------------------------------

    def power_fail(self) -> None:
        """Cut power without unwinding the Python stack.

        Volatile CPU-side and device-cache state is probabilistically
        landed and then discarded; durable state is untouched.  Call
        :meth:`reboot` afterwards to bring services back.
        """
        self.crash.apply_power_loss()
        self.blockdev.power_fail(self.config.crash_land_probability)
        self.fs._mounted = False

    def reboot(self) -> list[int]:
        """Boot the machine after a power failure.

        Replays the filesystem journal, re-attaches the NVRAM heap
        namespace, and runs heap recovery (reclaiming pending blocks).
        Returns the addresses of the reclaimed blocks — the database layer
        uses this during its own recovery.
        """
        self.fs.mount()
        self.heapo.attach()
        return self.heapo.recover()

    # ------------------------------------------------------------------
    # conveniences
    # ------------------------------------------------------------------

    @property
    def page_size(self) -> int:
        """Database/filesystem page size."""
        return self.config.page_size

    def elapsed_seconds(self) -> float:
        """Simulated seconds since boot."""
        return self.clock.now_ns / 1e9

    def __repr__(self) -> str:
        return (
            f"System(profile={self.config.name!r}, "
            f"nvram_write_latency_ns={self.config.nvram.write_latency_ns})"
        )
