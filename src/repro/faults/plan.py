"""Fault plans: declarative, seeded descriptions of hardware misbehaviour.

The crash controller models *clean* power loss — volatile state gambles,
durable state survives exactly.  Real NVRAM and eMMC parts misbehave in
more ways (NVLog's checksum-guarded salvage, arXiv:2408.02911;
architecture-aware PM transaction corruption handling, arXiv:1903.06226):

* **media decay** — cells flip bits or get stuck after power events;
* **poisoned units** — ECC-uncorrectable regions that *report* failure
  on read instead of silently returning garbage;
* **transient I/O errors** — eMMC commands that fail once and succeed on
  retry.

A :class:`FaultPlan` packages all of that as plain seeded data so a
torture run is fully reproducible: the same plan against the same
workload produces bit-identical faults, failures, and traces.  Plans
round-trip through JSON (:meth:`FaultPlan.to_json` /
:meth:`FaultPlan.from_json`) so failing traces can be replayed and
minimized.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass


@dataclass(frozen=True)
class MediaFaultSpec:
    """Seeded NVRAM media decay, applied when power is lost.

    ``bit_flips`` single-bit flips and ``stuck_units`` stuck-at atomic
    units (the unit freezes at its decayed value; later writes are
    silently ignored on read) are placed uniformly over 256-byte regions
    the workload actually wrote — decay of never-written cells cannot be
    observed, so targeting written regions maximizes fault coverage per
    injected fault.  ``poison_units`` marks units as ECC-uncorrectable:
    reads covering them raise :class:`repro.errors.MediaError`.
    """

    bit_flips: int = 0
    stuck_units: int = 0
    poison_units: int = 0


@dataclass(frozen=True)
class IoFaultSpec:
    """Seeded transient block-device failures.

    Each timed page read/write independently fails with the given rate,
    raising :class:`repro.errors.IoError`.  Failures are *transient*: at
    most ``max_consecutive`` consecutive failures hit any single retried
    operation, so a caller retrying more times than that always
    succeeds.  Bulk mount-time scans (``read_page_silent``) model DMA
    transfers outside the command path and are not injected.
    """

    read_error_rate: float = 0.0
    write_error_rate: float = 0.0
    max_consecutive: int = 2


@dataclass(frozen=True)
class ShipFaultSpec:
    """Seeded misbehaviour of the log-shipping replication channel.

    Each shipped segment batch independently suffers (in check order):
    **drop** — the batch never arrives (capped at ``max_consecutive``
    consecutive drops per channel, so resends always make progress);
    **duplicate** — a second copy arrives ``duplicate_delay_ns`` later;
    **reorder** — delivery is delayed by 1–4 × ``reorder_delay_ns``, so
    a later batch overtakes it; **corrupt** — one seeded bit of the
    payload flips in flight.  Followers are expected to absorb all four:
    segment decode validates checksums and close words, and the
    sequence-number cursor makes duplicates and stale reorders no-ops.
    """

    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    reorder_rate: float = 0.0
    corrupt_rate: float = 0.0
    max_consecutive: int = 3
    duplicate_delay_ns: int = 300_000
    reorder_delay_ns: int = 500_000


@dataclass(frozen=True)
class FaultPlan:
    """One seeded fault scenario for a whole simulated machine.

    ``io`` targets the machine's primary block device (the WAL/database
    volume); ``archive_io`` targets the segment-archive cold-store device
    (:mod:`repro.archive`) independently, so chaos storms can hammer the
    disk tier without touching the NVWAL fast path — and vice versa.
    """

    seed: int = 0
    media: MediaFaultSpec | None = None
    io: IoFaultSpec | None = None
    ship: ShipFaultSpec | None = None
    archive_io: IoFaultSpec | None = None

    def to_json(self) -> dict:
        """Plain-dict form for trace files."""
        return {
            "seed": self.seed,
            "media": asdict(self.media) if self.media else None,
            "io": asdict(self.io) if self.io else None,
            "ship": asdict(self.ship) if self.ship else None,
            "archive_io": asdict(self.archive_io) if self.archive_io else None,
        }

    @classmethod
    def from_json(cls, data: dict) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_json` output."""
        return cls(
            seed=data.get("seed", 0),
            media=MediaFaultSpec(**data["media"]) if data.get("media") else None,
            io=IoFaultSpec(**data["io"]) if data.get("io") else None,
            ship=ShipFaultSpec(**data["ship"]) if data.get("ship") else None,
            archive_io=IoFaultSpec(**data["archive_io"])
            if data.get("archive_io")
            else None,
        )
