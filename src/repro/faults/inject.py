"""Seeded fault injectors that realize a :class:`~repro.faults.plan.FaultPlan`.

Two injectors, one per device family:

* :class:`NvramFaultInjector` corrupts the durable NVRAM image when power
  is lost (decayed cells show up at the next boot) and overlays stuck /
  poisoned atomic units on every subsequent read.
* :class:`BlockIoFaultInjector` fails individual eMMC page commands
  transiently, with a hard cap on consecutive failures per operation so
  bounded retry loops always make progress.

Both draw from their own ``random.Random`` stream derived from the plan
seed, independent of the crash controller's RNG, so adding media faults
to a scenario does not perturb which volatile bytes land at a crash.
"""

from __future__ import annotations

import random

from repro.config import ATOMIC_UNIT
from repro.errors import IoError, MediaError
from repro.faults.plan import IoFaultSpec, MediaFaultSpec, ShipFaultSpec
from repro.hw.memory import WEAR_REGION, NvramDevice


class NvramFaultInjector:
    """Applies seeded media decay to an :class:`NvramDevice`.

    Faults target 256-byte wear regions the workload actually wrote:
    decay of never-written cells is invisible to any oracle, so placing
    faults on written regions maximizes coverage per injected fault.

    Three fault kinds, all placed at :meth:`on_power_loss` time:

    * **bit flip** — one bit of the durable image is inverted in place;
    * **stuck unit** — an 8-byte atomic unit freezes at its decayed
      value (current contents with one bit flipped); later writes land
      in the durable image but reads keep returning the frozen value;
    * **poison unit** — an 8-byte unit becomes ECC-uncorrectable; any
      read overlapping it raises :class:`MediaError`.
    """

    def __init__(self, spec: MediaFaultSpec, seed: int) -> None:
        self.spec = spec
        self.rng = random.Random((seed * 0x9E3779B1 + 0x6D2B79F5) & 0xFFFFFFFF)
        #: unit base address -> frozen 8-byte value returned on read
        self.stuck: dict[int, bytes] = {}
        #: unit base addresses that raise MediaError on read
        self.poisoned: set[int] = set()
        #: byte addresses of injected single-bit flips (for trace logs)
        self.flipped: list[int] = []

    # -- placement ----------------------------------------------------------

    def _pick_addr(self, nvram: NvramDevice, align: int) -> int | None:
        """A uniformly random ``align``-aligned address in a written region."""
        regions = sorted(nvram._wear)
        if not regions:
            return None
        region = regions[self.rng.randrange(len(regions))]
        base = region * WEAR_REGION
        span = min(WEAR_REGION, nvram.size - base)
        if span < align:
            return None
        return base + self.rng.randrange(span // align) * align

    def on_power_loss(self, nvram: NvramDevice) -> None:
        """Inject this spec's faults into the durable image.

        Called by the system *after* the crash controller has landed (or
        dropped) volatile state, so decay applies to what actually
        reached the DIMM — the state recovery will read at next boot.
        """
        for _ in range(self.spec.bit_flips):
            addr = self._pick_addr(nvram, align=1)
            if addr is None:
                continue
            bit = self.rng.randrange(8)
            nvram._data[addr] ^= 1 << bit
            self.flipped.append(addr)
        for _ in range(self.spec.stuck_units):
            addr = self._pick_addr(nvram, align=ATOMIC_UNIT)
            if addr is None or addr in self.poisoned:
                continue
            frozen = bytearray(nvram._data[addr : addr + ATOMIC_UNIT])
            bit = self.rng.randrange(ATOMIC_UNIT * 8)
            frozen[bit // 8] ^= 1 << (bit % 8)
            self.stuck[addr] = bytes(frozen)
        for _ in range(self.spec.poison_units):
            addr = self._pick_addr(nvram, align=ATOMIC_UNIT)
            if addr is None:
                continue
            self.stuck.pop(addr, None)
            self.poisoned.add(addr)

    # -- write path ---------------------------------------------------------

    def on_write(self, addr: int, length: int) -> None:
        """Durable writes clear the poison of units they fully cover.

        Rewriting a whole atomic unit replaces its ECC codeword, so the
        unit becomes readable again — the behavior of real persistent
        memory (``ndctl clear-error``: writes clear poison).  Stuck units
        stay stuck: their cells, not their codewords, are worn out.
        """
        if not self.poisoned or length <= 0:
            return
        end = addr + length
        cleared = [
            unit
            for unit in self.poisoned
            if addr <= unit and unit + ATOMIC_UNIT <= end
        ]
        for unit in cleared:
            self.poisoned.discard(unit)

    # -- read path ----------------------------------------------------------

    def filter_read(self, addr: int, length: int, data: bytes) -> bytes:
        """Overlay stuck units and fail poisoned ones for one device read."""
        if self.poisoned:
            first = addr - (addr % ATOMIC_UNIT)
            for unit in self.poisoned:
                if first <= unit < addr + length:
                    err = MediaError(
                        f"uncorrectable NVRAM unit at {unit:#x} "
                        f"(read addr={addr:#x} len={length})"
                    )
                    # Persistent by construction: the unit keeps failing
                    # until a write replaces its whole ECC codeword.
                    err.retryable = False
                    raise err
        if self.stuck:
            out = None
            end = addr + length
            for unit, frozen in self.stuck.items():
                if unit + ATOMIC_UNIT <= addr or unit >= end:
                    continue
                if out is None:
                    out = bytearray(data)
                lo = max(unit, addr)
                hi = min(unit + ATOMIC_UNIT, end)
                out[lo - addr : hi - addr] = frozen[lo - unit : hi - unit]
            if out is not None:
                return bytes(out)
        return data


class BlockIoFaultInjector:
    """Transient eMMC command failures with bounded consecutive repeats.

    Each timed page read/write independently fails with the spec's rate.
    A per-(operation, page) counter caps consecutive failures at
    ``max_consecutive``, so any caller retrying at least
    ``max_consecutive + 1`` times is guaranteed to get through — the
    contract the filesystem's bounded retry-with-backoff relies on.
    """

    def __init__(self, spec: IoFaultSpec, seed: int) -> None:
        self.spec = spec
        self.rng = random.Random((seed * 0x85EBCA6B + 0xC2B2AE35) & 0xFFFFFFFF)
        self._consecutive: dict[tuple[str, int], int] = {}
        #: total injected failures (for trace logs / tests)
        self.injected = 0

    def before_op(self, kind: str, pno: int) -> None:
        """Raise :class:`IoError` if this command transiently fails."""
        rate = (
            self.spec.read_error_rate
            if kind == "read"
            else self.spec.write_error_rate
        )
        if rate <= 0.0:
            return
        key = (kind, pno)
        if self.rng.random() < rate:
            failures = self._consecutive.get(key, 0)
            if failures < self.spec.max_consecutive:
                self._consecutive[key] = failures + 1
                self.injected += 1
                err = IoError(f"transient {kind} failure on page {pno}")
                # Transient by construction: consecutive failures per
                # (op, page) are capped, so retrying always succeeds.
                err.retryable = True
                raise err
        self._consecutive.pop(key, None)


class ShipFaultInjector:
    """Seeded drop/duplicate/reorder/bit-flip faults for one replication
    channel.

    Each :meth:`deliveries` call decides the fate of one shipped batch
    and returns ``(extra_delay_ns, payload)`` tuples — possibly empty
    (dropped), possibly two entries (duplicated), possibly delayed past
    later batches (reordered), possibly with one bit flipped (corrupted).
    Decisions draw from the injector's own ``random.Random`` stream, so
    the same seed against the same send sequence produces bit-identical
    channel behaviour regardless of follower count or scheduling.
    """

    def __init__(self, spec: ShipFaultSpec, seed: int) -> None:
        self.spec = spec
        self.rng = random.Random((seed * 0xC2B2AE3D + 0x27D4EB2F) & 0xFFFFFFFF)
        self._consecutive_drops = 0
        #: counters for trace logs / tests
        self.dropped = 0
        self.duplicated = 0
        self.reordered = 0
        self.corrupted = 0

    def deliveries(self, payload: bytes) -> list[tuple[int, bytes]]:
        """Fate of one sent batch: list of (extra delay ns, bytes) copies."""
        spec = self.spec
        if self.rng.random() < spec.drop_rate:
            if self._consecutive_drops < spec.max_consecutive:
                self._consecutive_drops += 1
                self.dropped += 1
                return []
        self._consecutive_drops = 0
        delay = 0
        if self.rng.random() < spec.reorder_rate:
            delay = spec.reorder_delay_ns * (1 + self.rng.randrange(4))
            self.reordered += 1
        if self.rng.random() < spec.corrupt_rate and payload:
            flipped = bytearray(payload)
            bit = self.rng.randrange(len(flipped) * 8)
            flipped[bit // 8] ^= 1 << (bit % 8)
            payload = bytes(flipped)
            self.corrupted += 1
        out = [(delay, payload)]
        if self.rng.random() < spec.duplicate_rate:
            out.append((delay + spec.duplicate_delay_ns, payload))
            self.duplicated += 1
        return out
