"""Fault models for the NVWAL simulator.

See :mod:`repro.faults.plan` for the declarative fault descriptions and
:mod:`repro.faults.inject` for the device-level injectors that realize
them.  :meth:`repro.system.System.inject_faults` wires a plan into a
simulated machine.
"""

from repro.faults.inject import (
    BlockIoFaultInjector,
    NvramFaultInjector,
    ShipFaultInjector,
)
from repro.faults.plan import (
    FaultPlan,
    IoFaultSpec,
    MediaFaultSpec,
    ShipFaultSpec,
)

__all__ = [
    "BlockIoFaultInjector",
    "FaultPlan",
    "IoFaultSpec",
    "MediaFaultSpec",
    "NvramFaultInjector",
    "ShipFaultInjector",
    "ShipFaultSpec",
]
