"""Quickstart: an embedded database whose WAL lives in (simulated) NVRAM.

Creates a Tuna-profile system, opens a database with the paper's
recommended NVWAL scheme (UH+LS+Diff), runs some SQL, cuts the power
mid-transaction, and shows recovery keeping exactly the committed state.

Run:  python examples/quickstart.py
"""

from repro import Database, System, tuna
from repro.errors import PowerFailure
from repro.wal import NvwalBackend, NvwalScheme


def main() -> None:
    system = System(tuna(write_latency_ns=500), seed=42)
    db = Database(system, wal=NvwalBackend(system, NvwalScheme.uh_ls_diff()))

    db.execute(
        "CREATE TABLE notes (id INTEGER PRIMARY KEY, title TEXT, body TEXT)"
    )
    db.execute("INSERT INTO notes VALUES (1, 'hello', 'write-ahead logs...')")
    db.execute("INSERT INTO notes VALUES (2, 'nvram', '...in NVRAM!')")
    with db.transaction():
        db.execute("UPDATE notes SET body = 'byte-addressable!' WHERE id = 2")
        db.execute("INSERT INTO notes VALUES (3, 'atomic', 'both or neither')")

    print("committed rows:")
    for row in db.query("SELECT id, title FROM notes ORDER BY id"):
        print("  ", row)

    # --- now lose power in the middle of a transaction -------------------
    system.crash.arm(after_ops=1, op_filter=lambda op: op == "dccmvac")
    try:
        with db.transaction():
            db.execute("INSERT INTO notes VALUES (4, 'doomed', 'never lands')")
            db.execute("DELETE FROM notes WHERE id = 1")
    except PowerFailure:
        print("\n*** power failure mid-transaction ***")

    system.reboot()
    db = Database(system, wal=NvwalBackend(system, NvwalScheme.uh_ls_diff()))
    print("after recovery (the torn transaction vanished atomically):")
    for row in db.query("SELECT id, title FROM notes ORDER BY id"):
        print("  ", row)

    print(f"\nsimulated time elapsed: {system.elapsed_seconds() * 1e3:.2f} ms")
    print(
        "cache-line flushes issued:",
        system.stats.get_count("dccmvac_instructions"),
    )
    print("persist barriers:", system.stats.get_count("persist_barriers"))


if __name__ == "__main__":
    main()
