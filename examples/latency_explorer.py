"""Latency explorer: how sensitive is your workload to NVRAM speed?

The paper's surprising result is that SQLite transactions barely notice
NVRAM latency once the logging stack stops fighting the hardware
(Section 5.3: a 4.4x latency increase costs only ~4% throughput).  This
example lets you see that for any scheme/latency combination on either
platform profile.

Run:  python examples/latency_explorer.py [tuna|nexus5]
"""

import sys

from repro.bench.harness import BackendSpec, run_workload
from repro.bench.mobibench import WorkloadSpec
from repro.config import PROFILES
from repro.wal.nvwal import NvwalScheme

LATENCIES = {
    "tuna": [400, 700, 1000, 1300, 1600, 1900],
    "nexus5": [2_000, 10_000, 47_000, 230_000],
}


def main() -> None:
    profile = sys.argv[1] if len(sys.argv) > 1 else "tuna"
    if profile not in PROFILES:
        raise SystemExit(f"unknown profile {profile!r}; pick from {list(PROFILES)}")
    latencies = LATENCIES[profile]
    spec = WorkloadSpec(op="insert", txns=200)

    print(f"insert throughput (txn/sec) on the {profile} profile")
    header = "scheme".ljust(20) + "".join(
        f"{lat / 1000:>9.1f}us" for lat in latencies
    ) + "   sensitivity"
    print(header)
    print("-" * len(header))
    for scheme in NvwalScheme.all_figure7():
        row = scheme.name.ljust(20)
        throughputs = []
        for latency in latencies:
            result = run_workload(
                PROFILES[profile](latency), BackendSpec.nvwal(scheme), spec
            )
            throughputs.append(result.throughput())
        row += "".join(f"{t:>11.0f}" for t in throughputs)
        drop = 100 * (1 - throughputs[-1] / throughputs[0])
        row += f"   -{drop:.1f}%"
        print(row)
    print(
        "\n'sensitivity' = throughput lost across the whole latency sweep;"
        "\nthe paper's point: with UH+LS+Diff it is only a few percent."
    )


if __name__ == "__main__":
    main()
