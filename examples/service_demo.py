"""Multi-client service demo: busy retries and a breaker trip/recover cycle.

Three cooperative clients hammer one NVWAL database through the service
layer.  Act 1 shows SQLite-style admission: writers contend for the
single writer slot, busy-wait on the simulated clock, and everyone
commits.  Act 2 poisons the NVRAM log at runtime (a decay storm — no
power loss involved): the maintenance scrub feeds the circuit breaker,
the service demotes to read-only, keeps serving reads, then checkpoints
the decayed log away and promotes itself back to read-write.

Run:  python examples/service_demo.py
"""

from repro import Database, System, tuna
from repro.errors import CircuitOpenError, ReadOnlyError
from repro.faults import MediaFaultSpec, NvramFaultInjector
from repro.service import ClientSession, DatabaseService, Scheduler, ServiceConfig
from repro.wal import NvwalBackend, NvwalScheme

SEED = 2016  # the year of the paper


def main() -> None:
    system = System(tuna(), seed=SEED)
    db = Database(
        system,
        wal=NvwalBackend(system, NvwalScheme.uh_ls_diff(),
                         checkpoint_threshold=1000),
    )
    db.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v TEXT)")

    config = ServiceConfig(breaker_threshold=1, breaker_cooldown_ns=3_000_000)
    service = DatabaseService(db, config, seed=SEED)

    # ---- Act 1: three writers contend for the single writer slot ----
    scheduler = Scheduler(system.clock)
    clients = [ClientSession(service, f"client-{i}") for i in range(3)]
    for i, client in enumerate(clients):
        for t in range(4):
            key = t * 3 + i  # disjoint keys per client
            client.enqueue((("insert", key, f"client-{i}.txn-{t}"),
                            ("update", key, f"client-{i}.txn-{t}.final")))
        scheduler.spawn(client.session_id, client.run())
    scheduler.spawn("maintenance", service.maintenance(), daemon=True)
    scheduler.run()

    print("Act 1 — concurrent writers, single-writer admission")
    for client in clients:
        print(f"  {client.session_id}: {len(client.acked)} txns acked")
    print(f"  busy waits: {service.stats.busy_waits} "
          f"(writers polling the held writer slot)")
    print(f"  rows committed: {len(db.dump_table('t'))}")

    # ---- Act 2: decay storm -> breaker trips -> degrade -> heal ----
    print("\nAct 2 — NVRAM decay storm, degrade to read-only, heal")
    injector = NvramFaultInjector(MediaFaultSpec(poison_units=64), seed=3)
    injector.on_power_loss(system.nvram)  # decay NOW, machine stays up
    system.nvram.fault_injector = injector

    maint = service.maintenance()
    next(maint)  # prime the daemon generator
    next(maint)  # scrub finds the decayed log; breaker trips; demote
    print(f"  mode after scrub: {service.mode!r} "
          f"(reason: {service.demotion_reason}, "
          f"breaker: {service.breaker.state})")

    try:
        for _ in service.submit_txn("client-0", (("insert", 99, "nope"),)):
            pass
    except (CircuitOpenError, ReadOnlyError) as exc:
        print(f"  write refused fast: {type(exc).__name__}: {exc}")

    rows = None
    reader = service.submit_read("client-1", "SELECT k, v FROM t")
    try:
        while True:
            next(reader)
    except StopIteration as stop:
        rows = stop.value
    print(f"  reads still served while degraded: {len(rows)} rows")

    system.clock.advance(config.breaker_cooldown_ns + 1)
    next(maint)  # repair: checkpoint drains the poisoned log; promote
    print(f"  mode after repair: {service.mode!r} "
          f"(promotions: {service.stats.promotions}, "
          f"log frames left: {db.wal.frame_count()})")

    for _ in service.submit_txn("client-0", (("insert", 99, "back"),)):
        pass
    print(f"  write accepted again: row {db.dump_table('t')[-1]}")


if __name__ == "__main__":
    main()
