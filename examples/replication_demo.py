"""Replication demo: a writer, two followers, a power cut, a promotion.

Act 1 wires a primary NVWAL database to two follower machines over
simulated channels and commits through the semi-synchronous shipping
gate: every acknowledgement waits until at least one follower holds the
epoch durably.  Act 2 pulls the plug on the primary mid-stream,
promotes the follower with the longest durable prefix (term bump fences
the dead primary's in-flight segments), and keeps serving — the
surviving follower reseeds from the new primary and reads come back
row-for-row.

Run:  python examples/replication_demo.py
"""

from repro.replication import Cluster, ReplicationConfig
from repro.replication.cluster import TABLE
from repro.service import ClientSession, Scheduler, ServiceConfig

SEED = 2016  # the year of the paper


def drain(cluster, clients) -> None:
    """Run client sessions against the cluster's current primary."""
    scheduler = Scheduler(cluster.clock)
    service = cluster.start_service(ServiceConfig(group_commit=True),
                                    seed=SEED)
    for client in clients:
        client.attach(service)
        if client.pending:
            scheduler.spawn(client.session_id, client.run())
    scheduler.spawn("maintenance", service.maintenance(), daemon=True)
    scheduler.spawn("batcher", service.commit_batcher(), daemon=True)
    scheduler.spawn("replicator", cluster.replicator.daemon(), daemon=True)
    scheduler.run()


def settle(cluster, budget_ns: int = 40_000_000) -> None:
    """Drain the channels until every live follower reaches the head."""
    deadline = cluster.clock.now_ns + budget_ns
    while cluster.clock.now_ns < deadline:
        if all(f.durable_seq >= cluster.head_seq
               for f in cluster.live_followers()):
            break
        cluster.clock.advance(200_000)
        cluster.replicator.tick()


def show(cluster) -> None:
    print(f"  primary: seq {cluster.head_seq}, term {cluster.term}, "
          f"{len(cluster.db.dump_table(TABLE))} rows")
    for node in cluster.followers:
        state = "alive" if node.alive else "DEAD"
        rows = (len(node.db.dump_table(TABLE))
                if node.alive and node.db.table_exists(TABLE) else "-")
        print(f"  {node.role} {node.node_id}: {state}, durable seq "
              f"{node.durable_seq}, term {node.term}, {rows} rows")


def main() -> None:
    cluster = Cluster(ReplicationConfig(followers=2, mode="semisync"),
                      seed=SEED)

    # ---- Act 1: replicated commits through the shipping gate ----
    print("Act 1 — semi-sync replication to two followers")
    clients = [ClientSession(None, f"client-{i}") for i in range(2)]
    for i, client in enumerate(clients):
        for t in range(5):
            key = t * 2 + i  # disjoint keys per client
            client.enqueue((("insert", key, f"client-{i}.txn-{t}"),))
    drain(cluster, clients)
    settle(cluster)
    show(cluster)

    # ---- Act 2: power-cut the writer, promote, keep serving ----
    print("\nAct 2 — primary power cut, failover promotion")
    cluster.kill_primary()
    node, watermark, scrub = cluster.promote()
    print(f"  promoted follower {node.node_id} at watermark {watermark} "
          f"(log scrub: {'clean' if not scrub.corruption_detected else scrub.reason})")

    for i, client in enumerate(clients):
        client.enqueue((("insert", 100 + i, f"after-failover-{i}"),))
    drain(cluster, clients)
    settle(cluster)
    show(cluster)

    rows = sorted(cluster.db.dump_table(TABLE))
    survivor = next(f for f in cluster.followers if f.role == "follower")
    assert sorted(survivor.db.dump_table(TABLE)) == rows
    print(f"\n  promoted primary serves {len(rows)} rows; the surviving "
          "follower matches row-for-row")


if __name__ == "__main__":
    main()
