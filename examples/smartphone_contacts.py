"""A smartphone contacts manager — the paper's motivating workload.

Android apps keep their state in SQLite; every UI action (add a contact,
star a favourite, log a call) is one small transaction.  This example runs
the same app logic twice on a simulated Nexus 5:

* stock SQLite WAL on eMMC flash with EXT4 (the status quo), and
* NVWAL with user-level heap + lazy sync + differential logging
  (the paper's proposal) on NVRAM with a 2 usec write latency,

then reports the per-action latency each storage stack delivers.

Run:  python examples/smartphone_contacts.py
"""

from repro import Database, System, nexus5
from repro.wal import FileWalBackend, NvwalBackend, NvwalScheme


def run_app(db: Database) -> dict[str, float]:
    """Drive the contacts app; return average latency per action (usec)."""
    clock = db.system.clock
    timings: dict[str, list[float]] = {}

    def action(name: str, fn) -> None:
        start = clock.now_ns
        fn()
        timings.setdefault(name, []).append(clock.now_ns - start)

    db.execute(
        "CREATE TABLE contacts (id INTEGER PRIMARY KEY, name TEXT,"
        " phone TEXT, starred INTEGER)"
    )
    db.execute(
        "CREATE TABLE call_log (id INTEGER PRIMARY KEY, contact_id INTEGER,"
        " duration INTEGER)"
    )

    for i in range(120):
        action(
            "add contact",
            lambda i=i: db.execute(
                "INSERT INTO contacts VALUES (?, ?, ?, 0)",
                (i, f"Person {i}", f"+1-555-{i:04d}"),
            ),
        )
    for i in range(0, 120, 7):
        action(
            "star favourite",
            lambda i=i: db.execute(
                "UPDATE contacts SET starred = 1 WHERE id = ?", (i,)
            ),
        )
    for i in range(200):
        action(
            "log call",
            lambda i=i: db.execute(
                "INSERT INTO call_log VALUES (?, ?, ?)",
                (i, (i * 13) % 120, 30 + i % 300),
            ),
        )
    for i in range(0, 120, 11):
        action(
            "delete contact",
            lambda i=i: db.execute("DELETE FROM contacts WHERE id = ?", (i,)),
        )
    action(
        "open favourites screen",
        lambda: db.query(
            "SELECT name, phone FROM contacts WHERE starred = 1 ORDER BY name"
        ),
    )
    return {
        name: sum(samples) / len(samples) / 1e3
        for name, samples in timings.items()
    }


def main() -> None:
    results = {}

    flash = System(nexus5(), seed=7)
    db = Database(
        system=flash,
        wal=FileWalBackend(flash, optimized=False),
        name="contacts.db",
        early_split=False,
    )
    results["stock WAL on eMMC flash"] = run_app(db)

    nvram = System(nexus5(write_latency_ns=2000), seed=7)
    db = Database(
        system=nvram,
        wal=NvwalBackend(nvram, NvwalScheme.uh_ls_diff()),
        name="contacts.db",
    )
    results["NVWAL (UH+LS+Diff) on NVRAM"] = run_app(db)

    actions = list(next(iter(results.values())))
    width = max(len(a) for a in actions)
    header = f"{'action'.ljust(width)}  " + "  ".join(
        f"{name:>28}" for name in results
    )
    print(header)
    print("-" * len(header))
    for action in actions:
        cells = "  ".join(
            f"{results[name][action]:>24.0f} usec" for name in results
        )
        print(f"{action.ljust(width)}  {cells}")
    slow = results["stock WAL on eMMC flash"]["add contact"]
    fast = results["NVWAL (UH+LS+Diff) on NVRAM"]["add contact"]
    print(f"\nadding a contact is {slow / fast:.1f}x faster with NVWAL")


if __name__ == "__main__":
    main()
