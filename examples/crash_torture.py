"""Crash-torture: power failures at random points, forever recoverable.

The property the whole paper hinges on: no matter when the power goes out,
recovery yields exactly the committed state.  This example hammers one
database through many crash/recover cycles — random workloads, random crash
points, adversarial 8-byte-granular landing of in-flight data — and checks
the database against a shadow model after every recovery.

Run:  python examples/crash_torture.py
"""

import random

from repro import Database, System, tuna
from repro.errors import PowerFailure
from repro.wal import NvwalBackend, NvwalScheme

CYCLES = 40
SEED = 2016  # the year of the paper


def main() -> None:
    rng = random.Random(SEED)
    system = System(tuna(), seed=SEED)
    scheme = NvwalScheme.uh_ls_diff()
    db = Database(system, wal=NvwalBackend(system, scheme))
    db.execute("CREATE TABLE bank (acct INTEGER PRIMARY KEY, balance INTEGER)")
    for acct in range(20):
        db.execute("INSERT INTO bank VALUES (?, 1000)", (acct,))
    committed = {acct: 1000 for acct in range(20)}

    survived = 0
    for cycle in range(CYCLES):
        working = dict(committed)
        system.crash.arm(after_ops=rng.randrange(1, 250))
        try:
            for _txn in range(rng.randrange(1, 6)):
                working = dict(committed)
                a, b = rng.sample(sorted(working), 2)
                amount = rng.randrange(1, 200)
                with db.transaction():
                    # a transfer must move money atomically
                    db.execute(
                        "UPDATE bank SET balance = balance - ? WHERE acct = ?",
                        (amount, a),
                    )
                    db.execute(
                        "UPDATE bank SET balance = balance + ? WHERE acct = ?",
                        (amount, b),
                    )
                working[a] -= amount
                working[b] += amount
                committed = working
            system.crash.disarm()
            system.power_fail()
        except PowerFailure:
            pass

        system.reboot()
        db = Database(system, wal=NvwalBackend(system, scheme))
        recovered = dict(db.dump_table("bank"))
        total = sum(recovered.values())
        assert recovered == committed, f"cycle {cycle}: state diverged!"
        assert total == 20 * 1000, f"cycle {cycle}: money {total} leaked!"
        survived += 1
        print(
            f"cycle {cycle + 1:2d}/{CYCLES}: crash survived, "
            f"{len(recovered)} accounts intact, total balance {total}"
        )

    print(f"\n{survived}/{CYCLES} crash cycles recovered the exact committed "
          "state — failure atomicity holds.")


if __name__ == "__main__":
    main()
