"""Figure 7: throughput vs NVRAM write latency for the six NVWAL schemes."""

import pytest

from benchmarks.conftest import BENCH_TXNS, measured_run
from repro.bench.harness import BackendSpec
from repro.bench.mobibench import WorkloadSpec
from repro.config import tuna
from repro.wal.nvwal import NvwalScheme

SCHEMES = {s.name: s for s in NvwalScheme.all_figure7()}


@pytest.mark.parametrize("scheme_name", list(SCHEMES), ids=list(SCHEMES))
@pytest.mark.parametrize("latency_ns", [400, 1900])
def test_fig7_insert_throughput(benchmark, scheme_name, latency_ns):
    scheme = SCHEMES[scheme_name]
    spec = WorkloadSpec(op="insert", txns=BENCH_TXNS)

    def run():
        return measured_run(tuna(latency_ns), BackendSpec.nvwal(scheme), spec)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["scheme"] = scheme_name
    benchmark.extra_info["nvram_write_latency_ns"] = latency_ns
    benchmark.extra_info["throughput_txn_per_sec"] = round(result.throughput())
    assert result.throughput() > 0


@pytest.mark.parametrize("op", ["update", "delete"])
def test_fig7_other_ops(benchmark, op):
    spec = WorkloadSpec(op=op, txns=BENCH_TXNS)

    def run():
        return measured_run(
            tuna(500), BackendSpec.nvwal(NvwalScheme.uh_ls_diff()), spec
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["op"] = op
    benchmark.extra_info["throughput_txn_per_sec"] = round(result.throughput())
    assert result.throughput() > 0
