"""Shared helpers for the pytest-benchmark suite.

Each ``bench_*`` module regenerates one table or figure of the paper at a
reduced-but-meaningful size.  Wall-clock time measured by pytest-benchmark
is the *simulator's* cost; the paper-relevant numbers (simulated
throughput, flush counts, byte volumes) are attached as ``extra_info`` so a
benchmark run doubles as a results regeneration.
"""

from __future__ import annotations

from repro.bench.harness import BackendSpec, run_workload
from repro.bench.mobibench import WorkloadSpec

#: Transactions per measured run: big enough for stable simulated numbers,
#: small enough that the whole benchmark suite finishes in minutes.
BENCH_TXNS = 150


def measured_run(config, backend: BackendSpec, spec: WorkloadSpec):
    """One workload run returning its RunResult."""
    return run_workload(config, backend, spec)
