"""Figure 8: block trace of insert transactions, stock vs optimized WAL."""

import pytest

from repro.bench.experiments.fig8 import trace_run


@pytest.mark.parametrize("optimized", [False, True], ids=["stock", "optimized"])
def test_fig8_block_trace(benchmark, optimized):
    def run():
        return trace_run(optimized)

    trace, batch_ms, by_tag = benchmark.pedantic(run, rounds=1, iterations=1)
    journal_kb = by_tag.get("journal", 0) // 1024
    wal_kb = sum(v for k, v in by_tag.items() if k.endswith("db-wal")) // 1024
    benchmark.extra_info["mode"] = "optimized" if optimized else "stock"
    benchmark.extra_info["journal_kb"] = journal_kb
    benchmark.extra_info["db_wal_kb"] = wal_kb
    benchmark.extra_info["batch_ms"] = round(batch_ms, 1)
    assert journal_kb > 0
