"""Table 1: cache-line flushes per transaction vs inserts per transaction."""

import pytest

from benchmarks.conftest import measured_run
from repro.bench.harness import BackendSpec
from repro.bench.mobibench import WorkloadSpec
from repro.config import tuna
from repro.hw import stats as statnames
from repro.wal.nvwal import NvwalScheme


@pytest.mark.parametrize("inserts_per_txn", [1, 8, 32])
def test_table1_flushes_per_txn(benchmark, inserts_per_txn):
    spec = WorkloadSpec(op="insert", txns=40, ops_per_txn=inserts_per_txn)

    def run():
        return measured_run(
            tuna(500), BackendSpec.nvwal(NvwalScheme.ls()), spec
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    flushes = result.per_txn(statnames.FLUSHES)
    benchmark.extra_info["inserts_per_txn"] = inserts_per_txn
    benchmark.extra_info["cache_line_flushes_per_txn"] = round(flushes, 1)
    assert flushes > 0
