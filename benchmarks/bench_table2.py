"""Table 2: bytes written to NVRAM, with and without differential logging."""

import pytest

from benchmarks.conftest import measured_run
from repro.bench.harness import BackendSpec
from repro.bench.mobibench import WorkloadSpec
from repro.config import tuna
from repro.wal.nvwal import NvwalScheme


@pytest.mark.parametrize("op", ["insert", "update", "delete"])
@pytest.mark.parametrize("diff", [False, True], ids=["full", "diff"])
def test_table2_nvram_write_volume(benchmark, op, diff):
    scheme = NvwalScheme.ls_diff() if diff else NvwalScheme.ls()
    spec = WorkloadSpec(op=op, txns=60, ops_per_txn=4)

    def run():
        return measured_run(tuna(500), BackendSpec.nvwal(scheme), spec)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    bytes_per_txn = result.per_txn("memcpy_bytes")
    benchmark.extra_info["op"] = op
    benchmark.extra_info["differential"] = diff
    benchmark.extra_info["nvram_bytes_per_txn"] = round(bytes_per_txn)
    assert bytes_per_txn > 0
