"""Motivation ladder: rollback journal -> WAL -> optimized WAL -> NVWAL."""

import pytest

from benchmarks.conftest import measured_run
from repro.bench.harness import BackendSpec
from repro.bench.mobibench import WorkloadSpec
from repro.config import nexus5
from repro.hw import stats as statnames
from repro.wal.nvwal import NvwalScheme

LADDER = {
    "rollback-journal": BackendSpec.journal(),
    "stock-wal": BackendSpec.file(optimized=False),
    "optimized-wal": BackendSpec.file(optimized=True),
    "nvwal-uh-ls-diff": BackendSpec.nvwal(NvwalScheme.uh_ls_diff()),
}


@pytest.mark.parametrize("name", list(LADDER), ids=list(LADDER))
def test_motivation_ladder(benchmark, name):
    backend = LADDER[name]
    spec = WorkloadSpec(op="insert", txns=60)

    def run():
        return measured_run(nexus5(), backend, spec)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["backend"] = backend.label
    benchmark.extra_info["throughput_txn_per_sec"] = round(
        result.throughput(include_checkpoint=True)
    )
    benchmark.extra_info["fsyncs_per_txn"] = round(
        result.per_txn(statnames.BLOCK_FLUSHES), 1
    )
    assert result.throughput() > 0
