"""Figure 9: NVWAL on emulated NVRAM vs WAL on eMMC flash (Nexus 5)."""

import pytest

from benchmarks.conftest import BENCH_TXNS, measured_run
from repro.bench.harness import BackendSpec
from repro.bench.mobibench import WorkloadSpec
from repro.config import nexus5
from repro.wal.nvwal import NvwalScheme

SPEC = WorkloadSpec(op="insert", txns=BENCH_TXNS)


@pytest.mark.parametrize("latency_us", [2, 47, 230])
@pytest.mark.parametrize(
    "scheme",
    [NvwalScheme.uh_ls_diff(), NvwalScheme.ls()],
    ids=["UH+LS+Diff", "LS"],
)
def test_fig9_nvwal(benchmark, scheme, latency_us):
    def run():
        return measured_run(
            nexus5(latency_us * 1000), BackendSpec.nvwal(scheme), SPEC
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    tput = result.throughput(include_checkpoint=True)
    benchmark.extra_info["scheme"] = scheme.name
    benchmark.extra_info["nvram_latency_us"] = latency_us
    benchmark.extra_info["throughput_txn_per_sec"] = round(tput)
    assert tput > 0


@pytest.mark.parametrize("optimized", [False, True], ids=["stock", "optimized"])
def test_fig9_flash_baseline(benchmark, optimized):
    def run():
        return measured_run(nexus5(), BackendSpec.file(optimized), SPEC)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    tput = result.throughput(include_checkpoint=True)
    benchmark.extra_info["mode"] = "optimized" if optimized else "stock"
    benchmark.extra_info["throughput_txn_per_sec"] = round(tput)
    # paper anchor: optimized WAL on flash ~541 txn/sec
    if optimized:
        assert 350 < tput < 750
