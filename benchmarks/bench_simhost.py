"""Host-side performance of the simulator's hot primitives.

Everything else in ``benchmarks/`` reports *simulated* numbers (throughput
on the simulated clock); this module instead measures how fast the
*simulator itself* runs on the host — the ops/sec of the primitives the
fast-path work of the "Simulator fast path" PR optimizes.  The contract
those optimizations must honor is: host wall-clock may change freely,
simulated time may not.

Two entry points:

* ``pytest benchmarks/bench_simhost.py`` — pytest-benchmark wrappers, for
  interactive comparison;
* ``python benchmarks/bench_simhost.py [--out BENCH_simulator.json]`` — the
  perf-regression harness: runs every probe and emits a JSON report
  (see ``BENCH_simulator.json`` at the repo root) so future PRs can track
  the host-performance trajectory across commits.
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import sys
import time
from pathlib import Path

if __name__ == "__main__":  # allow running as a plain script from repo root
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.harness import BackendSpec, run_workload
from repro.bench.mobibench import WorkloadSpec
from repro.config import tuna
from repro.system import System
from repro.telemetry.metrics import telemetry_disabled
from repro.wal.diff import DiffMode, compute_extents
from repro.wal.nvwal import NvwalScheme

#: Target wall-clock per probe: long enough to be stable, short enough that
#: the whole harness stays well under a minute.
_MIN_SECONDS = 0.2

PAGE = 4096


def _rate(fn, *, min_seconds: float = _MIN_SECONDS) -> float:
    """Calls/sec of ``fn``, measured over at least ``min_seconds``.

    Reports the reciprocal of the *median* per-call time rather than the
    mean: on shared or frequency-scaled hosts, occasional multi-ms stalls
    (scheduler preemption, GC) would otherwise dominate short probes and
    make the trajectory numbers noise-bound.
    """
    fn()  # warm up (first NVRAM materialization, caches, etc.)
    times: list[float] = []
    total = 0.0
    while total < min_seconds:
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        times.append(elapsed)
        total += elapsed
    times.sort()
    return 1.0 / times[len(times) // 2]


def _fresh_system() -> tuple[System, int]:
    system = System(tuna(), seed=0)
    return system, system.heapo.heap_start + PAGE


# ---------------------------------------------------------------------------
# probes — each returns ops/sec of one hot primitive
# ---------------------------------------------------------------------------


def probe_store_page() -> float:
    """Whole-page ``cache.store`` (the memcpy data path)."""
    system, addr = _fresh_system()
    payload = bytes(range(256)) * (PAGE // 256)
    window = 256  # cycle addresses so dirty-line churn stays realistic
    state = {"i": 0}

    def step() -> None:
        i = state["i"] = (state["i"] + 1) % window
        system.cpu.store(addr + i * PAGE, payload)

    return _rate(step)


def probe_load_page() -> float:
    """Whole-page ``cache.load`` over a part-cached, part-durable range."""
    system, addr = _fresh_system()
    payload = b"\xab" * PAGE
    for i in range(0, 64, 2):  # cache every other page; rest stays durable
        system.cpu.store(addr + i * PAGE, payload)

    state = {"i": 0}

    def step() -> None:
        i = state["i"] = (state["i"] + 1) % 64
        system.cpu.load_free(addr + i * PAGE, PAGE)

    return _rate(step)


def probe_flush_commit_cycle() -> float:
    """The Algorithm 1 tail: memcpy + flush + dmb + persist barrier."""
    system, addr = _fresh_system()
    payload = b"\xcd" * PAGE

    def step() -> None:
        system.cpu.memcpy(addr, payload)
        system.cpu.dmb()
        system.cpu.cache_line_flush(addr, addr + PAGE)
        system.cpu.dmb()
        system.cpu.persist_barrier()

    return _rate(step)


def probe_heapo_churn() -> float:
    """Kernel-heap allocate/free with a populated descriptor table."""
    system, _ = _fresh_system()
    heapo = system.heapo
    survivors = [heapo.nvmalloc(PAGE, name="nvwal-blk") for _ in range(256)]

    def step() -> None:
        alloc = heapo.nv_pre_malloc(PAGE, name="nvwal-blk")
        heapo.nv_malloc_set_used_flag(alloc)
        heapo.nvfree(alloc)

    rate = _rate(step)
    del survivors
    return rate


def probe_heapo_lookup() -> float:
    """Namespace/address lookups against many live allocations."""
    system, _ = _fresh_system()
    heapo = system.heapo
    allocs = [heapo.nvmalloc(256, name="nvwal-blk") for _ in range(512)]
    root = heapo.nvmalloc(64, name="nvwal-root")

    def step() -> None:
        heapo.lookup("nvwal-root")
        heapo.is_live(root.addr)
        heapo.state_of(allocs[13].addr)

    return _rate(step)


def probe_diff_extents() -> float:
    """Differential logging's page diff on a realistically dirtied page."""
    old = bytes(range(256)) * (PAGE // 256)
    new = bytearray(old)
    new[24:40] = b"\xff" * 16  # header fields
    new[512:516] = b"\xee" * 4  # slot array entry
    new[3000:3130] = b"\xdd" * 130  # cell content

    def step() -> None:
        compute_extents(old, bytes(new), DiffMode.MULTI_RANGE)

    return _rate(step)


def probe_group_append() -> float:
    """WAL-layer epoch appends: frames/sec through group_begin/append/close.

    Isolates the group-commit data path — transactions joining an open
    epoch with no per-transaction flush or barrier, one persist-barrier
    sequence at the close — from the SQL and B-tree layers above it.
    """
    from repro.bench.harness import make_database

    db = make_database(tuna(500), BackendSpec.nvwal(NvwalScheme.uh_ls_diff()))
    wal = db.wal
    page_size = db.system.page_size
    old = bytes(range(256)) * (page_size // 256)
    new = bytearray(old)
    new[24:40] = b"\xff" * 16
    new[3000:3130] = b"\xdd" * 130
    dirty = {2: bytes(new)}
    pre = {2: old}
    appends = 16

    def step() -> None:
        wal.group_begin()
        for _ in range(appends):
            wal.group_append(dirty, pre)
        wal.group_close()
        if wal.should_checkpoint():
            db.checkpoint()

    return _rate(step) * appends


def probe_insert_txns() -> float:
    """End-to-end host txns/sec of the paper's default workload.

    Measured through the group-commit path (epochs of 8 transactions,
    one flush + persist-barrier sequence per epoch) — the service
    layer's commit-coalescing default and the fastest configuration.
    """
    spec = WorkloadSpec(op="insert", txns=50, ops_per_txn=1, group_epoch=8)

    def step() -> None:
        run_workload(tuna(500), BackendSpec.nvwal(NvwalScheme.uh_ls_diff()), spec)

    return _rate(step, min_seconds=0.5) * spec.txns


#: Recorded ceiling on telemetry's host-side cost: with every layer
#: instrumented, end-to-end host throughput may drop by at most this
#: fraction versus a telemetry-disabled run.  Generous enough to absorb
#: shared-host noise, tight enough to catch an accidentally hot
#: instrument (e.g. a snapshot on the commit path).
TELEMETRY_OVERHEAD_BOUND = 0.35


def probe_telemetry_overhead() -> float:
    """Instrumented txns/sec, guarded two ways against regressions.

    1. *Simulated time is free*: per-run simulated transaction and
       checkpoint nanoseconds must be bit-identical with telemetry on
       and off.
    2. *Host time is bounded*: the enabled/disabled host-rate gap must
       stay under :data:`TELEMETRY_OVERHEAD_BOUND`.
    """
    spec = WorkloadSpec(op="insert", txns=50, ops_per_txn=1, group_epoch=8)

    def run():
        return run_workload(
            tuna(500), BackendSpec.nvwal(NvwalScheme.uh_ls_diff()), spec
        )

    with telemetry_disabled():
        baseline = run()
        base_rate = _rate(run, min_seconds=0.5)
    enabled = run()
    enabled_rate = _rate(run, min_seconds=0.5)
    assert enabled.txn_time_ns == baseline.txn_time_ns, (
        "telemetry changed simulated transaction time: "
        f"{enabled.txn_time_ns} != {baseline.txn_time_ns}"
    )
    assert enabled.checkpoint_time_ns == baseline.checkpoint_time_ns, (
        "telemetry changed simulated checkpoint time: "
        f"{enabled.checkpoint_time_ns} != {baseline.checkpoint_time_ns}"
    )
    overhead = base_rate / enabled_rate - 1.0
    assert overhead < TELEMETRY_OVERHEAD_BOUND, (
        f"telemetry host overhead {overhead:.1%} exceeds the "
        f"{TELEMETRY_OVERHEAD_BOUND:.0%} bound"
    )
    return enabled_rate * spec.txns


PROBES = {
    "cache_store_page_per_sec": probe_store_page,
    "cache_load_page_per_sec": probe_load_page,
    "flush_commit_cycle_per_sec": probe_flush_commit_cycle,
    "wal_group_append_frames_per_sec": probe_group_append,
    "heapo_alloc_free_per_sec": probe_heapo_churn,
    "heapo_lookup_per_sec": probe_heapo_lookup,
    "diff_compute_extents_per_sec": probe_diff_extents,
    "host_insert_txns_per_sec": probe_insert_txns,
    "telemetry_overhead_txns_per_sec": probe_telemetry_overhead,
}


def run_all(repeat: int = 1) -> dict[str, float]:
    """Run every probe; mapping of probe name -> host ops/sec.

    With ``repeat`` > 1 the whole suite runs that many times and each
    probe reports its best pass — the ``timeit`` convention: the minimum
    time (maximum rate) is the least-disturbed measurement on a host
    shared with other tenants.
    """
    results: dict[str, float] = {}
    for _ in range(max(1, repeat)):
        for name, fn in PROBES.items():
            rate = round(fn(), 1)
            if rate > results.get(name, 0.0):
                results[name] = rate
    return results


# ---------------------------------------------------------------------------
# pytest-benchmark wrappers
# ---------------------------------------------------------------------------


def _bench(benchmark, name):
    rate = benchmark.pedantic(PROBES[name], rounds=1, iterations=1)
    benchmark.extra_info["host_ops_per_sec"] = round(rate, 1)
    assert rate > 0


def test_simhost_store(benchmark):
    _bench(benchmark, "cache_store_page_per_sec")


def test_simhost_load(benchmark):
    _bench(benchmark, "cache_load_page_per_sec")


def test_simhost_flush_cycle(benchmark):
    _bench(benchmark, "flush_commit_cycle_per_sec")


def test_simhost_group_append(benchmark):
    _bench(benchmark, "wal_group_append_frames_per_sec")


def test_simhost_heapo(benchmark):
    _bench(benchmark, "heapo_alloc_free_per_sec")


def test_simhost_diff(benchmark):
    _bench(benchmark, "diff_compute_extents_per_sec")


def test_simhost_telemetry_overhead(benchmark):
    _bench(benchmark, "telemetry_overhead_txns_per_sec")


# ---------------------------------------------------------------------------
# the JSON trajectory report
# ---------------------------------------------------------------------------


def _git_rev() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            cwd=Path(__file__).resolve().parent,
            check=True,
        ).stdout.strip()
    except Exception:
        return "unknown"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure host-side simulator performance and emit JSON."
    )
    parser.add_argument(
        "--out",
        default="BENCH_simulator.json",
        help="output path (default: BENCH_simulator.json in the CWD)",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="run the suite N times, report each probe's best pass",
    )
    args = parser.parse_args(argv)
    out = Path(args.out)
    if not out.parent.is_dir():
        parser.error(f"output directory does not exist: {out.parent}")
    results = run_all(repeat=args.repeat)
    report = {
        "schema": 1,
        "git_rev": _git_rev(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "probes": results,
        "note": (
            "Host ops/sec of simulator hot primitives; higher is better. "
            "Simulated time is unaffected by these optimizations — see "
            "'Host performance vs. simulated time' in README.md."
        ),
    }
    out.write_text(json.dumps(report, indent=2) + "\n")
    for name, rate in results.items():
        print(f"{name:36s} {rate:>14,.1f}")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
