"""Figure 5: lazy vs eager synchronization time breakdown."""

import pytest

from benchmarks.conftest import measured_run
from repro.bench.harness import BackendSpec
from repro.bench.mobibench import WorkloadSpec
from repro.config import tuna
from repro.hw.stats import TimeBucket
from repro.wal.nvwal import NvwalScheme


@pytest.mark.parametrize(
    "mode,scheme",
    [("L", NvwalScheme.ls()), ("E", NvwalScheme.eager())],
    ids=["lazy", "eager"],
)
@pytest.mark.parametrize("inserts_per_txn", [1, 32])
def test_fig5_breakdown(benchmark, mode, scheme, inserts_per_txn):
    spec = WorkloadSpec(op="insert", txns=40, ops_per_txn=inserts_per_txn)

    def run():
        return measured_run(tuna(500), BackendSpec.nvwal(scheme), spec)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["inserts_per_txn"] = inserts_per_txn
    benchmark.extra_info["memcpy_us"] = round(
        result.time_per_txn_us(TimeBucket.MEMCPY), 2
    )
    benchmark.extra_info["dccmvac_us"] = round(
        result.time_per_txn_us(TimeBucket.DCCMVAC), 2
    )
    benchmark.extra_info["dmb_us"] = round(
        result.time_per_txn_us(TimeBucket.DMB), 2
    )
    assert result.time_per_txn_us(TimeBucket.DCCMVAC) > 0
