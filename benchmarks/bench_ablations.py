"""Ablation benchmarks: block size, persistency model, diff encoding."""

import pytest

from benchmarks.conftest import measured_run
from repro.bench.harness import BackendSpec, make_database
from repro.bench.mobibench import Mobibench, WorkloadSpec
from repro.config import tuna
from repro.nvram.persistency import PersistencyModel
from repro.wal.diff import DiffMode
from repro.wal.nvwal import NvwalScheme

SPEC = WorkloadSpec(op="insert", txns=100)


@pytest.mark.parametrize("block_size", [2048, 8192, 32768])
def test_ablation_block_size(benchmark, block_size):
    scheme = NvwalScheme(
        sync=NvwalScheme.uh_ls_diff().sync,
        diff=True,
        user_heap=True,
        block_size=block_size,
    )

    def run():
        db = make_database(tuna(500), BackendSpec.nvwal(scheme))
        bench = Mobibench(db, SPEC)
        bench.prepare()
        result = bench.run()
        return db, result

    db, result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["block_size"] = block_size
    benchmark.extra_info["frames_per_block"] = round(db.wal.frames_per_block(), 1)
    benchmark.extra_info["throughput_txn_per_sec"] = round(result.throughput())
    assert result.throughput() > 0


@pytest.mark.parametrize("model", list(PersistencyModel), ids=lambda m: m.value)
def test_ablation_persistency(benchmark, model):
    scheme = NvwalScheme.uh_ls_diff().with_persistency(model)

    def run():
        return measured_run(tuna(1000), BackendSpec.nvwal(scheme), SPEC)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["model"] = model.value
    benchmark.extra_info["throughput_txn_per_sec"] = round(result.throughput())
    assert result.throughput() > 0


@pytest.mark.parametrize("mode", list(DiffMode), ids=lambda m: m.value)
def test_ablation_diff_mode(benchmark, mode):
    scheme = NvwalScheme(
        sync=NvwalScheme.ls().sync,
        diff=mode is not DiffMode.FULL_PAGE,
        user_heap=True,
        diff_mode=mode,
    )

    def run():
        return measured_run(tuna(500), BackendSpec.nvwal(scheme), SPEC)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["diff_mode"] = mode.value
    benchmark.extra_info["nvram_bytes_per_txn"] = round(
        result.per_txn("memcpy_bytes")
    )
    benchmark.extra_info["throughput_txn_per_sec"] = round(result.throughput())
    assert result.throughput() > 0
