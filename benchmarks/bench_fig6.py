"""Figure 6: ordering-constraint overhead as % of execution time."""

import pytest

from benchmarks.conftest import measured_run
from repro.bench.harness import BackendSpec
from repro.bench.mobibench import WorkloadSpec
from repro.config import tuna
from repro.hw.stats import TimeBucket
from repro.wal.nvwal import NvwalScheme


@pytest.mark.parametrize("inserts_per_txn", [1, 4, 32])
def test_fig6_overhead_ratio(benchmark, inserts_per_txn):
    spec = WorkloadSpec(op="insert", txns=40, ops_per_txn=inserts_per_txn)

    def run():
        return measured_run(
            tuna(500), BackendSpec.nvwal(NvwalScheme.ls()), spec
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    overhead_us = (
        result.time_per_txn_us(TimeBucket.DCCMVAC)
        + result.time_per_txn_us(TimeBucket.DMB)
        + result.time_per_txn_us(TimeBucket.SYSCALL)
    )
    exec_us = result.mean_txn_us()
    percent = 100 * overhead_us / exec_us
    benchmark.extra_info["inserts_per_txn"] = inserts_per_txn
    benchmark.extra_info["exec_us"] = round(exec_us, 1)
    benchmark.extra_info["overhead_us"] = round(overhead_us, 1)
    benchmark.extra_info["overhead_percent"] = round(percent, 2)
    # paper: 4.6% at 1 insert, falling to 0.8% at 32
    assert percent < 10.0
